// Batched (SoA) multi-state execution equivalence: one batched gate
// dispatch over all lanes must reproduce the looped single-state execution
// exactly. In scalar dispatch mode the batched lane loops restate the very
// same formulas the single-state kernels use (and the baseline TU cannot
// contract them into FMA), so equivalence here is BIT-EXACT — checked with
// EXPECT_EQ, not a tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/cpu_features.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/model.h"
#include "qsim/backend.h"
#include "qsim/batched_executor.h"
#include "qsim/batched_statevector.h"
#include "qsim/executor.h"
#include "qsim/noise.h"
#include "qsim/optimizer.h"

namespace qugeo::qsim {
namespace {

std::vector<Complex> random_amplitudes(Index dim, Rng& rng) {
  std::vector<Complex> amps(dim);
  Real norm = 0;
  for (Complex& a : amps) {
    a = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    norm += std::norm(a);
  }
  norm = std::sqrt(norm);
  for (Complex& a : amps) a /= norm;
  return amps;
}

void expect_lanes_bitwise(const BatchedStateVector& batch,
                          std::span<const StateVector> looped,
                          const char* what) {
  ASSERT_EQ(batch.lanes(), looped.size());
  for (std::size_t l = 0; l < batch.lanes(); ++l) {
    const StateVector got = batch.lane_state(l);
    const auto want = looped[l].amplitudes();
    ASSERT_EQ(got.amplitudes().size(), want.size());
    for (Index k = 0; k < want.size(); ++k) {
      EXPECT_EQ(got.amplitudes()[k].real(), want[k].real())
          << what << " lane " << l << " amp " << k;
      EXPECT_EQ(got.amplitudes()[k].imag(), want[k].imag())
          << what << " lane " << l << " amp " << k;
    }
  }
}

const GateKind kAllKinds[] = {
    GateKind::kI,   GateKind::kX,     GateKind::kY,   GateKind::kZ,
    GateKind::kH,   GateKind::kS,     GateKind::kSdg, GateKind::kT,
    GateKind::kTdg, GateKind::kRX,    GateKind::kRY,  GateKind::kRZ,
    GateKind::kPhase, GateKind::kU3,  GateKind::kCX,  GateKind::kCZ,
    GateKind::kCRY, GateKind::kCU3,   GateKind::kSWAP};

/// A one-op circuit for `kind` on random distinct qubits with random
/// literal angles (kI has no public builder; its circuit stays empty,
/// which is the same identity semantics).
Circuit one_op_circuit(GateKind kind, Index num_qubits, Rng& rng) {
  Circuit c(num_qubits);
  const auto q0 = static_cast<Index>(
      rng.uniform_int(0, static_cast<std::int64_t>(num_qubits) - 1));
  Index q1 = q0;
  while (q1 == q0)
    q1 = static_cast<Index>(
        rng.uniform_int(0, static_cast<std::int64_t>(num_qubits) - 1));
  const Real a = rng.uniform(-3, 3);
  const Real b = rng.uniform(-3, 3);
  const Real d = rng.uniform(-3, 3);
  switch (kind) {
    case GateKind::kI: break;
    case GateKind::kX: c.x(q0); break;
    case GateKind::kY: c.y(q0); break;
    case GateKind::kZ: c.z(q0); break;
    case GateKind::kH: c.h(q0); break;
    case GateKind::kS: c.s(q0); break;
    case GateKind::kSdg: c.sdg(q0); break;
    case GateKind::kT: c.t(q0); break;
    case GateKind::kTdg: c.tdg(q0); break;
    case GateKind::kRX: c.rx(q0, a); break;
    case GateKind::kRY: c.ry(q0, a); break;
    case GateKind::kRZ: c.rz(q0, a); break;
    case GateKind::kPhase: c.phase(q0, a); break;
    case GateKind::kU3: c.u3(q0, a, b, d); break;
    case GateKind::kCX: c.cx(q0, q1); break;
    case GateKind::kCZ: c.cz(q0, q1); break;
    case GateKind::kCRY: c.cry(q0, q1, a); break;
    case GateKind::kCU3: c.cu3(q0, q1, a, b, d); break;
    case GateKind::kSWAP: c.swap(q0, q1); break;
    default: ADD_FAILURE() << "unhandled kind"; break;
  }
  return c;
}

/// The paper's U3+CU3 ansatz with frozen literal angles — the form whose
/// canonicalization emits kFused2Q / kFusedCtl2Q ops.
Circuit frozen_test_circuit(Index qubits, Rng& rng) {
  Circuit c(qubits);
  for (Index q = 0; q < qubits; ++q)
    c.u3(q, rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2));
  for (Index q = 0; q + 1 < qubits; ++q)
    c.cu3(q, q + 1, rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2));
  c.swap(0, qubits - 1);
  for (Index q = 0; q < qubits; ++q)
    c.u3(q, rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2));
  c.cx(qubits - 1, 0);
  return c;
}

TEST(BatchedExecutor, EveryGateKindMatchesLoopedBitExact) {
  const simd::ScopedSimdMode scoped(simd::SimdMode::kScalar);
  Rng rng(41);
  const Index nq = 5;
  const std::size_t lanes = 3;
  for (GateKind kind : kAllKinds) {
    for (int trial = 0; trial < 3; ++trial) {
      const Circuit c = one_op_circuit(kind, nq, rng);
      BatchedStateVector batch(nq, lanes);
      std::vector<StateVector> looped;
      for (std::size_t l = 0; l < lanes; ++l) {
        const auto amps = random_amplitudes(Index{1} << nq, rng);
        batch.set_lane(l, amps);
        looped.emplace_back(nq);
        looped.back().set_amplitudes(amps);
      }
      run_circuit_batched(c, {}, batch);
      for (auto& psi : looped) run_circuit(c, {}, psi);
      expect_lanes_bitwise(batch, looped, gate_name(kind).data());
    }
  }
}

TEST(BatchedExecutor, FusedKindsMatchLoopedBitExact) {
  const simd::ScopedSimdMode scoped(simd::SimdMode::kScalar);
  Rng rng(42);
  const Index nq = 5;
  const std::size_t lanes = 4;
  const Circuit fused = canonicalize_for_backend(frozen_test_circuit(nq, rng));
  bool has_fused2q = false, has_fused_ctl = false;
  for (const Op& op : fused.ops()) {
    has_fused2q |= op.kind == GateKind::kFused2Q;
    has_fused_ctl |= op.kind == GateKind::kFusedCtl2Q;
  }
  ASSERT_TRUE(has_fused2q) << "canonicalization emitted no kFused2Q op";
  ASSERT_TRUE(has_fused_ctl) << "canonicalization emitted no kFusedCtl2Q op";

  BatchedStateVector batch(nq, lanes);
  std::vector<StateVector> looped;
  for (std::size_t l = 0; l < lanes; ++l) {
    const auto amps = random_amplitudes(Index{1} << nq, rng);
    batch.set_lane(l, amps);
    looped.emplace_back(nq);
    looped.back().set_amplitudes(amps);
  }
  run_circuit_batched(fused, {}, batch);
  for (auto& psi : looped) run_circuit(fused, {}, psi);
  expect_lanes_bitwise(batch, looped, "fused circuit");
}

TEST(BatchedExecutor, BatchSizeOneDegeneracy) {
  const simd::ScopedSimdMode scoped(simd::SimdMode::kScalar);
  Rng rng(43);
  const Index nq = 6;
  const Circuit c = frozen_test_circuit(nq, rng);
  const auto amps = random_amplitudes(Index{1} << nq, rng);
  BatchedStateVector batch(nq, 1);
  batch.set_lane(0, amps);
  std::vector<StateVector> looped(1, StateVector(nq));
  looped[0].set_amplitudes(amps);
  run_circuit_batched(c, {}, batch);
  run_circuit(c, {}, looped[0]);
  expect_lanes_bitwise(batch, looped, "batch of one");
}

TEST(BatchedExecutor, Avx2MatchesLoopedWithinTolerance) {
  if (!simd::cpu_supports_avx2())
    GTEST_SKIP() << "AVX2+FMA not supported on this CPU";
  const simd::ScopedSimdMode scoped(simd::SimdMode::kAvx2);
  Rng rng(44);
  const Index nq = 5;
  const std::size_t lanes = 6;
  const Circuit c = frozen_test_circuit(nq, rng);
  BatchedStateVector batch(nq, lanes);
  std::vector<StateVector> looped;
  for (std::size_t l = 0; l < lanes; ++l) {
    const auto amps = random_amplitudes(Index{1} << nq, rng);
    batch.set_lane(l, amps);
    looped.emplace_back(nq);
    looped.back().set_amplitudes(amps);
  }
  run_circuit_batched(c, {}, batch);
  for (auto& psi : looped) run_circuit(c, {}, psi);
  for (std::size_t l = 0; l < lanes; ++l) {
    const StateVector got = batch.lane_state(l);
    for (Index k = 0; k < got.dim(); ++k) {
      EXPECT_NEAR(got.amplitudes()[k].real(),
                  looped[l].amplitudes()[k].real(), 1e-12);
      EXPECT_NEAR(got.amplitudes()[k].imag(),
                  looped[l].amplitudes()[k].imag(), 1e-12);
    }
  }
}

TEST(BatchedExecutor, NoisyBatchedMatchesLoopedPerLaneBitExact) {
  // Per-lane RNG objects replay the exact draw sequence of the looped
  // trajectories, so batched noisy execution is bit-identical in scalar
  // mode — including the readout flips.
  const simd::ScopedSimdMode scoped(simd::SimdMode::kScalar);
  Rng rng(45);
  const Index nq = 4;
  const std::size_t lanes = 4;
  const Circuit c = frozen_test_circuit(nq, rng);
  NoiseModel noise;
  noise.gate_error_prob = 0.2;
  noise.channel = NoiseChannel::kDepolarizing;
  noise.readout_error = 0.1;
  ASSERT_TRUE(noise_is_batchable(noise));

  BatchedStateVector batch(nq, lanes);
  std::vector<StateVector> looped;
  std::vector<Rng> batch_rngs;
  for (std::size_t l = 0; l < lanes; ++l) {
    const auto amps = random_amplitudes(Index{1} << nq, rng);
    batch.set_lane(l, amps);
    looped.emplace_back(nq);
    looped.back().set_amplitudes(amps);
    batch_rngs.push_back(trajectory_rng(7, l));
  }
  run_circuit_noisy_batched(c, {}, batch, noise, batch_rngs);
  for (std::size_t l = 0; l < lanes; ++l) {
    Rng traj = trajectory_rng(7, l);
    run_circuit_noisy(c, {}, looped[l], noise, traj);
  }
  expect_lanes_bitwise(batch, looped, "noisy batch");
}

TEST(BatchedExecutor, GeneralizedChannelsAreNotBatchable) {
  NoiseModel damping;
  damping.gate_error_prob = 0.05;
  damping.channel = NoiseChannel::kAmplitudeDamping;
  EXPECT_FALSE(noise_is_batchable(damping));

  NoiseModel readout_only;
  readout_only.readout_error = 0.02;
  EXPECT_TRUE(noise_is_batchable(readout_only));

  // The batched noisy entry point refuses what it cannot reproduce.
  Rng rng(46);
  const Circuit c = frozen_test_circuit(3, rng);
  BatchedStateVector batch(3, 2);
  std::vector<Rng> rngs{trajectory_rng(1, 0), trajectory_rng(1, 1)};
  EXPECT_THROW(run_circuit_noisy_batched(c, {}, batch, damping, rngs),
               std::invalid_argument);
}

TEST(BatchedBackend, StatevectorOverrideMatchesBaseLoop) {
  const Index nq = 5;
  Rng rng(47);
  const Circuit c = frozen_test_circuit(nq, rng);

  std::vector<StateVector> states;
  for (int i = 0; i < 3; ++i) {
    states.emplace_back(nq);
    states.back().set_amplitudes(random_amplitudes(Index{1} << nq, rng));
  }

  ExecutionConfig cfg;
  cfg.simd = simd::SimdMode::kScalar;
  const auto backend = make_backend(cfg, nq);
  const auto batched = backend->run_batched_probabilities(c, {}, states);

  ASSERT_EQ(batched.size(), states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    const auto single = make_backend(cfg, nq);
    single->run(c, {}, StateVector(states[i]));
    const auto want = single->probabilities();
    ASSERT_EQ(batched[i].size(), want.size());
    for (std::size_t k = 0; k < want.size(); ++k)
      EXPECT_EQ(batched[i][k], want[k]) << "state " << i << " outcome " << k;
  }
}

TEST(BatchedBackend, TrajectoryGroupingIsBitIdentical) {
  // TrajectoryBackend with batch > 1 groups trajectories into SoA lanes;
  // the fixed-order fold must keep the averaged probabilities bit-identical
  // to the unbatched backend for any group width, including ragged groups
  // (10 trajectories at width 4 -> groups of 4, 4, 2 per slot stride).
  Rng rng(48);
  const Index nq = 4;
  const Circuit c = frozen_test_circuit(nq, rng);

  const auto run_with_batch = [&](std::size_t batch) {
    ExecutionConfig cfg;
    cfg.backend = BackendKind::kTrajectory;
    cfg.trajectories = 10;
    cfg.seed = 99;
    cfg.batch = batch;
    cfg.simd = simd::SimdMode::kScalar;
    cfg.noise.gate_error_prob = 0.1;
    cfg.noise.readout_error = 0.05;
    const auto backend = make_backend(cfg, nq);
    backend->run(c, {});
    return backend->probabilities();
  };

  const auto unbatched = run_with_batch(1);
  for (std::size_t batch : {2u, 4u, 8u, 16u}) {
    const auto got = run_with_batch(batch);
    ASSERT_EQ(got.size(), unbatched.size());
    for (std::size_t k = 0; k < got.size(); ++k)
      EXPECT_EQ(got[k], unbatched[k]) << "batch " << batch << " outcome " << k;
  }
}

TEST(BatchedBackend, ThreadPoolInteraction) {
  // Batched trajectory groups fanned across a 4-worker pool must still
  // fold bit-identically (per-trajectory RNG streams + fixed-order fold).
  const std::size_t saved = num_threads();
  set_num_threads(4);
  Rng rng(49);
  const Index nq = 4;
  const Circuit c = frozen_test_circuit(nq, rng);
  ExecutionConfig cfg;
  cfg.backend = BackendKind::kTrajectory;
  cfg.trajectories = 12;
  cfg.seed = 5;
  cfg.simd = simd::SimdMode::kScalar;
  cfg.noise.gate_error_prob = 0.1;

  cfg.batch = 1;
  const auto b1 = make_backend(cfg, nq);
  b1->run(c, {});
  const auto unbatched = b1->probabilities();

  cfg.batch = 4;
  const auto b4 = make_backend(cfg, nq);
  b4->run(c, {});
  const auto batched = b4->probabilities();

  set_num_threads(saved);
  ASSERT_EQ(batched.size(), unbatched.size());
  for (std::size_t k = 0; k < batched.size(); ++k)
    EXPECT_EQ(batched[k], unbatched[k]) << "outcome " << k;
}

TEST(BatchedModel, PredictBatchedMatchesUnbatchedWithRaggedTail) {
  // Model-level gating: exec.batch > 1 sweeps whole QuBatch chunks through
  // the SoA path. Five samples at batch 2 leaves a ragged final group; the
  // padded lane must not leak into the returned predictions.
  core::ModelConfig mc;
  Rng rng(50);
  core::QuGeoModel model(mc, rng);

  std::vector<data::ScaledSample> samples(5);
  for (auto& s : samples) {
    s.waveform.resize(256);
    s.velocity.resize(64);
    rng.fill_uniform(s.waveform, -1, 1);
    rng.fill_uniform(s.velocity, 0, 1);
  }
  std::vector<const data::ScaledSample*> ptrs;
  for (const auto& s : samples) ptrs.push_back(&s);

  qsim::ExecutionConfig exec = model.execution_config();
  exec.simd = simd::SimdMode::kScalar;
  exec.batch = 1;
  const auto unbatched = model.predict_with(ptrs, exec);
  exec.batch = 2;
  const auto batched = model.predict_with(ptrs, exec);

  ASSERT_EQ(batched.size(), unbatched.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    ASSERT_EQ(batched[i].size(), unbatched[i].size()) << "sample " << i;
    for (std::size_t k = 0; k < batched[i].size(); ++k)
      EXPECT_EQ(batched[i][k], unbatched[i][k])
          << "sample " << i << " pixel " << k;
  }
}

TEST(BatchedBackend, ShotWrapAppliesOutsideBatchKnob) {
  // make_backend applies the ShotBackend wrap OUTSIDE whatever the batch
  // knob selects for the inner statevector: the returned kind is kShot and
  // the sampled distribution is unaffected by the inner batch width.
  Rng rng(51);
  const Index nq = 4;
  const Circuit c = frozen_test_circuit(nq, rng);
  ExecutionConfig cfg;
  cfg.shots = 2048;
  cfg.seed = 7;
  cfg.simd = simd::SimdMode::kScalar;

  cfg.batch = 1;
  const auto b1 = make_backend(cfg, nq);
  ASSERT_EQ(b1->kind(), BackendKind::kShot);
  b1->run(c, {});
  const auto p1 = b1->probabilities();

  cfg.batch = 8;
  const auto b8 = make_backend(cfg, nq);
  ASSERT_EQ(b8->kind(), BackendKind::kShot);
  b8->run(c, {});
  const auto p8 = b8->probabilities();

  ASSERT_EQ(p8.size(), p1.size());
  for (std::size_t k = 0; k < p1.size(); ++k)
    EXPECT_EQ(p8[k], p1[k]) << "outcome " << k;
}

TEST(BatchedModel, ShotsDisableChunkGroupingBitIdentically) {
  // Combined QUGEO_BATCH + QUGEO_SHOTS semantics: predict_with only groups
  // chunks into SoA lanes on the exact statevector path (shots == 0), so
  // with shots > 0 the batch knob must be inert — {batch=8, shots=4096}
  // returns the same per-chunk sampled realizations as {batch=1,
  // shots=4096}, bit for bit, never lane-averaged ones.
  core::ModelConfig mc;
  Rng rng(52);
  core::QuGeoModel model(mc, rng);

  std::vector<data::ScaledSample> samples(5);
  for (auto& s : samples) {
    s.waveform.resize(256);
    s.velocity.resize(64);
    rng.fill_uniform(s.waveform, -1, 1);
    rng.fill_uniform(s.velocity, 0, 1);
  }
  std::vector<const data::ScaledSample*> ptrs;
  for (const auto& s : samples) ptrs.push_back(&s);

  qsim::ExecutionConfig exec = model.execution_config();
  exec.simd = simd::SimdMode::kScalar;
  exec.shots = 4096;
  exec.batch = 1;
  const auto sampled = model.predict_with(ptrs, exec);
  exec.batch = 8;
  const auto sampled_batched = model.predict_with(ptrs, exec);

  ASSERT_EQ(sampled_batched.size(), sampled.size());
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    ASSERT_EQ(sampled_batched[i].size(), sampled[i].size()) << "sample " << i;
    for (std::size_t k = 0; k < sampled[i].size(); ++k)
      EXPECT_EQ(sampled_batched[i][k], sampled[i][k])
          << "sample " << i << " pixel " << k;
  }
}

TEST(BatchedStateVectorBasics, RejectsInvalidConstruction) {
  EXPECT_THROW(BatchedStateVector(29, 2), std::invalid_argument);
  EXPECT_THROW(BatchedStateVector(4, 0), std::invalid_argument);
  BatchedStateVector b(3, 2);
  EXPECT_EQ(b.dim(), Index{8});
  EXPECT_EQ(b.lanes(), 2u);
  // reset() returns every lane to |0...0>.
  b.apply_1q(gate_matrix(GateKind::kH, {}), 0);
  b.reset();
  for (std::size_t l = 0; l < 2; ++l) {
    EXPECT_EQ(b.lane_norm_sq(l), Real(1));
    const auto probs = b.lane_probabilities(l);
    EXPECT_EQ(probs[0], Real(1));
  }
}

}  // namespace
}  // namespace qugeo::qsim
