// Density-matrix simulator: pure-state agreement with the state vector,
// exact channel properties, and consistency with the trajectory sampler.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "qsim/density_matrix.h"
#include "qsim/encoding.h"
#include "qsim/executor.h"
#include "qsim/noise.h"

namespace qugeo::qsim {
namespace {

Circuit random_circuit(Index qubits, int gates, Rng& rng) {
  Circuit c(qubits);
  for (int g = 0; g < gates; ++g) {
    const auto q = static_cast<Index>(rng.uniform_int(0, static_cast<std::int64_t>(qubits) - 1));
    switch (rng.uniform_int(0, 3)) {
      case 0: c.h(q); break;
      case 1: c.u3(q, rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)); break;
      case 2: {
        const auto t = static_cast<Index>(rng.uniform_int(0, static_cast<std::int64_t>(qubits) - 1));
        if (t != q) c.cx(q, t);
        break;
      }
      default: {
        const auto t = static_cast<Index>(rng.uniform_int(0, static_cast<std::int64_t>(qubits) - 1));
        if (t != q) c.swap(q, t);
        break;
      }
    }
  }
  return c;
}

TEST(DensityMatrix, InitialStateIsGroundProjector) {
  DensityMatrix rho(2);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-14);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-14);
  EXPECT_NEAR(rho.probabilities()[0], 1.0, 1e-14);
}

TEST(DensityMatrix, FromStateReproducesBornProbabilities) {
  Rng rng(1);
  StateVector psi(3);
  std::vector<Real> data(8);
  rng.fill_uniform(data, -1, 1);
  encode_amplitudes(data, psi);
  const DensityMatrix rho = DensityMatrix::from_state(psi);
  const auto p_rho = rho.probabilities();
  for (Index k = 0; k < 8; ++k)
    EXPECT_NEAR(p_rho[k], psi.probability(k), 1e-12);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
}

TEST(DensityMatrix, NoiselessEvolutionMatchesStateVector) {
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    const Circuit c = random_circuit(3, 15, rng);
    StateVector psi(3);
    run_circuit(c, {}, psi);
    DensityMatrix rho(3);
    run_circuit_density(c, {}, rho, 0.0);
    const auto p_rho = rho.probabilities();
    for (Index k = 0; k < 8; ++k)
      ASSERT_NEAR(p_rho[k], psi.probability(k), 1e-10) << "trial " << trial;
    for (Index q = 0; q < 3; ++q)
      ASSERT_NEAR(rho.expect_z(q), psi.expect_z(q), 1e-10);
  }
}

TEST(DensityMatrix, DepolarizePreservesTraceAndReducesPurity) {
  DensityMatrix rho(2);
  rho.apply_1q(gate_matrix(GateKind::kH, {}), 0);
  const Real purity_before = rho.purity();
  rho.depolarize(0, 0.2);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
  EXPECT_LT(rho.purity(), purity_before);
}

TEST(DensityMatrix, FullDepolarizationIsMaximallyMixedOnQubit) {
  DensityMatrix rho(1);
  rho.depolarize(0, 0.75);  // p=3/4 = completely depolarizing channel
  EXPECT_NEAR(rho.expect_z(0), 0.0, 1e-12);
  EXPECT_NEAR(rho.purity(), 0.5, 1e-12);
}

TEST(DensityMatrix, DepolarizingZContraction) {
  // After the p-depolarizing channel, <Z> shrinks by exactly (1 - 4p/3).
  DensityMatrix rho(1);  // |0>, <Z> = 1
  const Real p = 0.15;
  rho.depolarize(0, p);
  EXPECT_NEAR(rho.expect_z(0), 1.0 - 4 * p / 3, 1e-12);
}

TEST(DensityMatrix, TrajectoryAverageConvergesToExactChannel) {
  // The Pauli-twirl trajectory sampler must agree with the exact channel
  // in expectation.
  Circuit c(2);
  c.h(0);
  c.ry(1, 0.8);
  c.cx(0, 1);
  c.ry(0, 0.5);
  const Real p = 0.05;

  DensityMatrix rho(2);
  run_circuit_density(c, {}, rho, p);

  const std::vector<Index> qubits = {0, 1};
  const auto z_traj = noisy_expect_z(c, {}, StateVector(2), qubits,
                                     NoiseModel{p}, 3, 4000);
  EXPECT_NEAR(z_traj[0], rho.expect_z(0), 0.05);
  EXPECT_NEAR(z_traj[1], rho.expect_z(1), 0.05);
}

TEST(DensityMatrix, KrausChannelMatchesUnitaryConjugation) {
  // A single unitary Kraus operator reduces to apply_1q.
  Rng rng(9);
  const Circuit c = random_circuit(3, 12, rng);
  DensityMatrix a(3), b(3);
  run_circuit_density(c, {}, a, 0.0);
  run_circuit_density(c, {}, b, 0.0);
  const Mat2 u = u3_matrix(0.7, -0.3, 1.1);
  a.apply_1q(u, 1);
  b.apply_kraus(std::span<const Mat2>(&u, 1), 1);
  for (Index r = 0; r < a.dim(); ++r)
    for (Index col = 0; col < a.dim(); ++col)
      ASSERT_NEAR(std::abs(a.element(r, col) - b.element(r, col)), 0.0, 1e-12);
}

TEST(DensityMatrix, KrausDepolarizingMatchesClosedForm) {
  // The four-operator depolarizing Kraus set must reproduce the in-place
  // depolarize() channel exactly.
  const Real p = 0.12;
  Rng rng(10);
  const Circuit c = random_circuit(2, 10, rng);
  DensityMatrix a(2), b(2);
  run_circuit_density(c, {}, a, 0.0);
  run_circuit_density(c, {}, b, 0.0);

  const Real k0 = std::sqrt(1 - p), kp = std::sqrt(p / 3);
  const Mat2 kraus[4] = {
      Mat2{{Complex{k0, 0}, Complex{0, 0}, Complex{0, 0}, Complex{k0, 0}}},
      Mat2{{Complex{0, 0}, Complex{kp, 0}, Complex{kp, 0}, Complex{0, 0}}},
      Mat2{{Complex{0, 0}, Complex{0, -kp}, Complex{0, kp}, Complex{0, 0}}},
      Mat2{{Complex{kp, 0}, Complex{0, 0}, Complex{0, 0}, Complex{-kp, 0}}}};
  a.depolarize(0, p);
  b.apply_kraus(kraus, 0);
  for (Index r = 0; r < a.dim(); ++r)
    for (Index col = 0; col < a.dim(); ++col)
      ASSERT_NEAR(std::abs(a.element(r, col) - b.element(r, col)), 0.0, 1e-12);
}

TEST(DensityMatrix, ResetAndSetFromState) {
  Rng rng(11);
  StateVector psi(2);
  std::vector<Real> data(4);
  rng.fill_uniform(data, -1, 1);
  encode_amplitudes(data, psi);
  DensityMatrix rho(2);
  rho.apply_1q(gate_matrix(GateKind::kH, {}), 0);
  rho.set_from_state(psi);
  const auto probs = rho.probabilities();
  for (Index k = 0; k < 4; ++k) EXPECT_NEAR(probs[k], psi.probability(k), 1e-12);
  rho.reset();
  EXPECT_NEAR(rho.probabilities()[0], 1.0, 1e-14);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-14);
}

TEST(DensityMatrix, SwapConjugation) {
  DensityMatrix rho(2);
  rho.apply_1q(gate_matrix(GateKind::kX, {}), 0);  // |01><01| (qubit0 = 1)
  rho.apply_swap(0, 1);
  EXPECT_NEAR(rho.probabilities()[2], 1.0, 1e-12);  // |10>
}

TEST(DensityMatrix, RejectsTooManyQubits) {
  EXPECT_THROW(DensityMatrix rho(14), std::invalid_argument);
}

}  // namespace
}  // namespace qugeo::qsim
