// Pluggable backend layer: capability masks, cross-backend equivalence at
// p = 0, trajectory convergence to the exact channel, deterministic
// trajectory streams, and factory/env plumbing.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/parallel.h"
#include "common/rng.h"
#include "qsim/backend.h"
#include "qsim/encoding.h"
#include "qsim/executor.h"

namespace qugeo::qsim {
namespace {

Circuit random_circuit(Index qubits, int gates, Rng& rng) {
  Circuit c(qubits);
  for (int g = 0; g < gates; ++g) {
    const auto q = static_cast<Index>(rng.uniform_int(0, static_cast<std::int64_t>(qubits) - 1));
    switch (rng.uniform_int(0, 3)) {
      case 0: c.h(q); break;
      case 1: c.u3(q, rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)); break;
      case 2: {
        const auto t = static_cast<Index>(rng.uniform_int(0, static_cast<std::int64_t>(qubits) - 1));
        if (t != q) c.cx(q, t);
        break;
      }
      default: {
        const auto t = static_cast<Index>(rng.uniform_int(0, static_cast<std::int64_t>(qubits) - 1));
        if (t != q) c.cry(q, t, rng.uniform(-2, 2));
        break;
      }
    }
  }
  return c;
}

StateVector random_state(Index qubits, Rng& rng) {
  StateVector psi(qubits);
  std::vector<Real> data(psi.dim());
  rng.fill_uniform(data, -1, 1);
  encode_amplitudes(data, psi);
  return psi;
}

TEST(Backend, NamesAndParsingRoundTrip) {
  for (const BackendKind kind :
       {BackendKind::kStatevector, BackendKind::kDensityMatrix,
        BackendKind::kTrajectory, BackendKind::kShot}) {
    const auto parsed = parse_backend_kind(backend_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_backend_kind("qpu").has_value());
}

TEST(Backend, CapabilityMasks) {
  const ExecutionConfig cfg;
  EXPECT_TRUE(StatevectorBackend(cfg).caps().supports_adjoint);
  EXPECT_FALSE(StatevectorBackend(cfg).caps().exact_noise);
  EXPECT_FALSE(DensityMatrixBackend(cfg).caps().supports_adjoint);
  EXPECT_TRUE(DensityMatrixBackend(cfg).caps().exact_noise);
  EXPECT_FALSE(TrajectoryBackend(cfg).caps().supports_adjoint);
  EXPECT_FALSE(TrajectoryBackend(cfg).caps().exact_noise);
}

TEST(Backend, StatevectorMatchesDirectExecution) {
  Rng rng(1);
  const Circuit c = random_circuit(4, 20, rng);
  StateVector direct = random_state(4, rng);
  const StateVector psi_in = direct;
  run_circuit(c, {}, direct);

  ExecutionConfig cfg;
  StatevectorBackend backend(cfg);
  backend.run(c, {}, psi_in);
  // The backend canonicalizes (run fusion) before executing, so literal
  // circuits agree to rounding; all-trainable circuits (the ansatz) are
  // untouched by fusion and stay bit-identical.
  const auto probs = backend.probabilities();
  for (Index k = 0; k < direct.dim(); ++k)
    ASSERT_NEAR(probs[k], direct.probability(k), 1e-12);
}

TEST(Backend, StatevectorBitIdenticalOnTrainableCircuits) {
  // Run fusion only touches literal gates; a fully trainable circuit (the
  // QuGeoVQC ansatz shape) must execute through the backend bit-for-bit as
  // through run_circuit.
  Circuit c(3);
  for (Index q = 0; q < 3; ++q) c.u3(q, c.new_params(3));
  for (Index q = 0; q < 3; ++q) c.cu3(q, (q + 1) % 3, c.new_params(3));
  std::vector<Real> params(c.num_params());
  Rng rng(6);
  rng.fill_uniform(params, -1, 1);

  StateVector direct = random_state(3, rng);
  const StateVector psi_in = direct;
  run_circuit(c, params, direct);

  StatevectorBackend backend((ExecutionConfig()));
  backend.run(c, params, psi_in);
  const auto probs = backend.probabilities();
  for (Index k = 0; k < direct.dim(); ++k)
    ASSERT_EQ(probs[k], direct.probability(k));
}

TEST(Backend, DensityAtZeroNoiseMatchesStatevector) {
  Rng rng(2);
  for (int trial = 0; trial < 4; ++trial) {
    const Circuit c = random_circuit(4, 24, rng);
    const StateVector psi_in = random_state(4, rng);

    ExecutionConfig cfg;
    StatevectorBackend sv(cfg);
    sv.run(c, {}, psi_in);

    cfg.backend = BackendKind::kDensityMatrix;
    DensityMatrixBackend dm(cfg);
    dm.run(c, {}, psi_in);

    const auto p_sv = sv.probabilities();
    const auto p_dm = dm.probabilities();
    ASSERT_EQ(p_sv.size(), p_dm.size());
    for (std::size_t k = 0; k < p_sv.size(); ++k)
      ASSERT_NEAR(p_sv[k], p_dm[k], 1e-10) << "trial " << trial;

    const std::vector<Index> qubits = {0, 1, 2, 3};
    const auto z_sv = sv.expect_z(qubits);
    const auto z_dm = dm.expect_z(qubits);
    for (std::size_t i = 0; i < qubits.size(); ++i)
      ASSERT_NEAR(z_sv[i], z_dm[i], 1e-10);
  }
}

TEST(Backend, TrajectoryAtZeroNoiseIsExact) {
  Rng rng(3);
  const Circuit c = random_circuit(3, 15, rng);
  const StateVector psi_in = random_state(3, rng);

  ExecutionConfig cfg;
  StatevectorBackend sv(cfg);
  sv.run(c, {}, psi_in);

  cfg.backend = BackendKind::kTrajectory;
  cfg.trajectories = 16;
  TrajectoryBackend traj(cfg);
  traj.run(c, {}, psi_in);

  const auto p_sv = sv.probabilities();
  const auto p_tr = traj.probabilities();
  for (std::size_t k = 0; k < p_sv.size(); ++k)
    ASSERT_NEAR(p_sv[k], p_tr[k], 1e-12);
}

TEST(Backend, TrajectoryConvergesToExactDepolarizingChannel) {
  // The sampled estimator must agree with the exact channel within
  // statistical tolerance on a small circuit.
  Rng rng(4);
  Circuit c(2);
  c.h(0);
  c.ry(1, 0.8);
  c.cx(0, 1);
  c.ry(0, 0.5);

  ExecutionConfig cfg;
  cfg.noise.gate_error_prob = 0.05;
  cfg.backend = BackendKind::kDensityMatrix;
  DensityMatrixBackend dm(cfg);
  dm.run(c, {});

  cfg.backend = BackendKind::kTrajectory;
  cfg.trajectories = 4000;
  cfg.seed = 99;
  TrajectoryBackend traj(cfg);
  traj.run(c, {});

  const std::vector<Index> qubits = {0, 1};
  const auto z_dm = dm.expect_z(qubits);
  const auto z_tr = traj.expect_z(qubits);
  for (std::size_t i = 0; i < qubits.size(); ++i)
    EXPECT_NEAR(z_tr[i], z_dm[i], 0.05);
  const auto p_dm = dm.probabilities();
  const auto p_tr = traj.probabilities();
  for (std::size_t k = 0; k < p_dm.size(); ++k)
    EXPECT_NEAR(p_tr[k], p_dm[k], 0.05);
}

TEST(Backend, NoisyRunsPreservePerGateInsertionPoints) {
  // Run fusion must NOT run before noisy execution: a literal run of k
  // gates carries k depolarizing insertion points, and the backend's
  // result must match the raw channel executor on the ORIGINAL op stream.
  Circuit c(1);
  c.h(0);
  c.t(0);
  c.h(0);
  c.t(0);  // one fusable 4-gate run -> 4 insertion points
  const Real p = 0.1;

  DensityMatrix raw(1);
  run_circuit_density(c, {}, raw, p);

  ExecutionConfig cfg;
  cfg.backend = BackendKind::kDensityMatrix;
  cfg.noise.gate_error_prob = p;
  DensityMatrixBackend dm(cfg);
  dm.run(c, {});
  const std::vector<Index> qubits = {0};
  EXPECT_NEAR(dm.expect_z(qubits)[0], raw.expect_z(0), 1e-12);
  EXPECT_NEAR(dm.density().purity(), raw.purity(), 1e-12);
}

TEST(Backend, TrajectoryRunsAreThreadCountInvariant) {
  Rng rng(5);
  const Circuit c = random_circuit(3, 12, rng);
  const StateVector psi_in = random_state(3, rng);

  ExecutionConfig cfg;
  cfg.backend = BackendKind::kTrajectory;
  cfg.noise.gate_error_prob = 0.1;
  cfg.trajectories = 48;
  cfg.seed = 17;

  set_num_threads(1);
  TrajectoryBackend t1(cfg);
  t1.run(c, {}, psi_in);
  const auto p1 = t1.probabilities();
  set_num_threads(4);
  TrajectoryBackend t4(cfg);
  t4.run(c, {}, psi_in);
  const auto p4 = t4.probabilities();
  set_num_threads(0);

  ASSERT_EQ(p1.size(), p4.size());
  for (std::size_t k = 0; k < p1.size(); ++k) EXPECT_EQ(p1[k], p4[k]);
}

TEST(Backend, PrepareResetsToGroundState) {
  const ExecutionConfig cfg;
  for (const auto make : {+[](const ExecutionConfig& c) -> std::unique_ptr<Backend> {
                            return std::make_unique<StatevectorBackend>(c);
                          },
                          +[](const ExecutionConfig& c) -> std::unique_ptr<Backend> {
                            return std::make_unique<DensityMatrixBackend>(c);
                          },
                          +[](const ExecutionConfig& c) -> std::unique_ptr<Backend> {
                            return std::make_unique<TrajectoryBackend>(c);
                          }}) {
    const auto backend = make(cfg);
    backend->prepare(3);
    EXPECT_EQ(backend->num_qubits(), 3u);
    const auto probs = backend->probabilities();
    ASSERT_EQ(probs.size(), 8u);
    EXPECT_NEAR(probs[0], 1.0, 1e-14);
    const std::vector<Index> qubits = {0, 1, 2};
    for (const Real z : backend->expect_z(qubits)) EXPECT_NEAR(z, 1.0, 1e-14);
  }
}

TEST(Backend, FactoryBuildsRequestedKind) {
  ExecutionConfig cfg;
  EXPECT_EQ(make_backend(cfg, 4)->kind(), BackendKind::kStatevector);
  cfg.backend = BackendKind::kDensityMatrix;
  EXPECT_EQ(make_backend(cfg, 4)->kind(), BackendKind::kDensityMatrix);
  cfg.backend = BackendKind::kTrajectory;
  EXPECT_EQ(make_backend(cfg, 4)->kind(), BackendKind::kTrajectory);
}

TEST(Backend, FactorySubstitutesStatevectorForOversizedNoiselessDensity) {
  ExecutionConfig cfg;
  cfg.backend = BackendKind::kDensityMatrix;
  const Index too_big = max_density_qubits() + 1;
  EXPECT_EQ(make_backend(cfg, too_big)->kind(), BackendKind::kStatevector);
  cfg.noise.gate_error_prob = 0.01;
  EXPECT_THROW((void)make_backend(cfg, too_big), std::invalid_argument);
}

TEST(Backend, EnvOverridesAreApplied) {
  ::setenv("QUGEO_BACKEND", "density", 1);
  ::setenv("QUGEO_NOISE_P", "0.015", 1);
  ::setenv("QUGEO_TRAJECTORIES", "7", 1);
  const ExecutionConfig cfg = apply_env_overrides(ExecutionConfig{});
  ::unsetenv("QUGEO_BACKEND");
  ::unsetenv("QUGEO_NOISE_P");
  ::unsetenv("QUGEO_TRAJECTORIES");
  EXPECT_EQ(cfg.backend, BackendKind::kDensityMatrix);
  EXPECT_NEAR(cfg.noise.gate_error_prob, 0.015, 1e-15);
  EXPECT_EQ(cfg.trajectories, 7u);

  ::setenv("QUGEO_BACKEND", "not-a-backend", 1);
  EXPECT_THROW((void)apply_env_overrides(ExecutionConfig{}), std::invalid_argument);
  ::unsetenv("QUGEO_BACKEND");
}

}  // namespace
}  // namespace qugeo::qsim
