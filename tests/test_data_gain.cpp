// Time-gain preprocessing and its interaction with the scalers.
#include <gtest/gtest.h>

#include <cmath>

#include "data/scaling.h"

namespace qugeo::data {
namespace {

TEST(TimeGain, ScalesLateSamplesUp) {
  ScaleTarget t;
  t.nsrc = 1;
  t.nt = 4;
  t.nrec = 2;
  t.time_gain_power = 1.0;
  std::vector<Real> w(8, 1.0);
  apply_time_gain(w, t);
  // gain(t) = (t+1)/4 for t = 0..3.
  EXPECT_NEAR(w[0], 0.25, 1e-12);
  EXPECT_NEAR(w[1], 0.25, 1e-12);
  EXPECT_NEAR(w[6], 1.0, 1e-12);
  EXPECT_NEAR(w[7], 1.0, 1e-12);
}

TEST(TimeGain, PowerTwoIsSquaredRamp) {
  ScaleTarget t;
  t.nsrc = 1;
  t.nt = 4;
  t.nrec = 1;
  t.time_gain_power = 2.0;
  std::vector<Real> w(4, 1.0);
  apply_time_gain(w, t);
  EXPECT_NEAR(w[0], 0.0625, 1e-12);
  EXPECT_NEAR(w[1], 0.25, 1e-12);
  EXPECT_NEAR(w[3], 1.0, 1e-12);
}

TEST(TimeGain, ZeroPowerIsIdentity) {
  ScaleTarget t;
  t.nt = 4;
  t.nrec = 2;
  t.nsrc = 1;
  t.time_gain_power = 0.0;
  std::vector<Real> w = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto before = w;
  apply_time_gain(w, t);
  EXPECT_EQ(w, before);
}

TEST(TimeGain, AppliesPerSource) {
  ScaleTarget t;
  t.nsrc = 2;
  t.nt = 2;
  t.nrec = 1;
  t.time_gain_power = 1.0;
  std::vector<Real> w = {1, 1, 1, 1};
  apply_time_gain(w, t);
  // Both sources see the same (0.5, 1.0) ramp.
  EXPECT_NEAR(w[0], 0.5, 1e-12);
  EXPECT_NEAR(w[1], 1.0, 1e-12);
  EXPECT_NEAR(w[2], 0.5, 1e-12);
  EXPECT_NEAR(w[3], 1.0, 1e-12);
}

TEST(TimeGain, ShapeMismatchRejected) {
  ScaleTarget t;
  std::vector<Real> w(10, 1.0);
  EXPECT_THROW(apply_time_gain(w, t), std::invalid_argument);
}

TEST(TimeGain, PreservesSign) {
  ScaleTarget t;
  t.nsrc = 1;
  t.nt = 2;
  t.nrec = 1;
  std::vector<Real> w = {-3.0, -5.0};
  apply_time_gain(w, t);
  EXPECT_LT(w[0], 0.0);
  EXPECT_LT(w[1], 0.0);
}

}  // namespace
}  // namespace qugeo::data
