// QuGeoVQC ansatz: the 576-parameter headline shape, grouping, batch-qubit
// isolation (the U(theta) (x) I property QuBatch relies on).
#include <gtest/gtest.h>

#include "core/ansatz.h"
#include "qsim/executor.h"

namespace qugeo::core {
namespace {

TEST(Ansatz, PaperHeadlineParameterCount) {
  // 8 qubits, 12 U3+CU3 blocks -> 12 * 8 * (3 + 3) = 576 parameters.
  const QubitLayout lay({8}, 0);
  AnsatzConfig cfg;
  cfg.blocks = 12;
  EXPECT_EQ(ansatz_param_count(lay, cfg), 576u);
}

TEST(Ansatz, ParamCountScalesWithBlocks) {
  const QubitLayout lay({8}, 0);
  for (std::size_t blocks : {1u, 4u, 12u, 20u}) {
    AnsatzConfig cfg;
    cfg.blocks = blocks;
    EXPECT_EQ(ansatz_param_count(lay, cfg), 48u * blocks);
  }
}

TEST(Ansatz, GateCountsPerBlock) {
  const QubitLayout lay({8}, 0);
  AnsatzConfig cfg;
  cfg.blocks = 12;
  const qsim::Circuit c = build_qugeo_ansatz(lay, cfg);
  EXPECT_EQ(c.num_ops(), 12u * 16u);  // 8 U3 + 8 CU3 per block
  EXPECT_EQ(c.two_qubit_op_count(), 12u * 8u);
}

TEST(Ansatz, BatchQubitsAreNeverTouched) {
  const QubitLayout lay({8}, 2);  // qubits 8, 9 are batch qubits
  AnsatzConfig cfg;
  cfg.blocks = 12;
  const qsim::Circuit c = build_qugeo_ansatz(lay, cfg);
  EXPECT_EQ(c.num_qubits(), 10u);
  for (const qsim::Op& op : c.ops()) {
    EXPECT_LT(op.qubits[0], 8u);
    if (qsim::gate_qubit_count(op.kind) == 2) {
      EXPECT_LT(op.qubits[1], 8u);
    }
  }
}

TEST(Ansatz, TwoGroupsGetInterGroupGates) {
  const QubitLayout lay({4, 4}, 0);
  AnsatzConfig cfg;
  cfg.blocks = 6;
  cfg.entangle_every = 3;
  const qsim::Circuit c = build_qugeo_ansatz(lay, cfg);
  // Look for gates bridging qubit ranges [0,4) and [4,8).
  std::size_t bridges = 0;
  for (const qsim::Op& op : c.ops()) {
    if (qsim::gate_qubit_count(op.kind) != 2) continue;
    const bool a_low = op.qubits[0] < 4, b_low = op.qubits[1] < 4;
    if (a_low != b_low) ++bridges;
  }
  EXPECT_EQ(bridges, 2u * 2u);  // 2 bridge gates, twice (blocks 3 and 6)
}

TEST(Ansatz, EntangleEveryZeroDisablesBridges) {
  const QubitLayout lay({4, 4}, 0);
  AnsatzConfig cfg;
  cfg.blocks = 6;
  cfg.entangle_every = 0;
  const qsim::Circuit c = build_qugeo_ansatz(lay, cfg);
  for (const qsim::Op& op : c.ops()) {
    if (qsim::gate_qubit_count(op.kind) != 2) continue;
    EXPECT_EQ(op.qubits[0] < 4, op.qubits[1] < 4);
  }
}

TEST(Ansatz, BlockDiagonalActionOnBatchedState) {
  // With one batch qubit, running the ansatz must act identically on the
  // two batch blocks: U (x) I. Prepare a state whose blocks hold two
  // different data vectors; after the circuit, block b must equal U times
  // the original block b, i.e. running the unbatched circuit on each block
  // separately must agree.
  const QubitLayout batched({2}, 1);
  const QubitLayout plain({2}, 0);
  AnsatzConfig cfg;
  cfg.blocks = 2;
  const qsim::Circuit cb = build_qugeo_ansatz(batched, cfg);
  const qsim::Circuit cp = build_qugeo_ansatz(plain, cfg);
  ASSERT_EQ(cb.num_params(), cp.num_params());
  std::vector<Real> params(cb.num_params());
  Rng rng(3);
  rng.fill_uniform(params, -1, 1);

  const std::vector<Real> block0 = {0.5, -0.5, 0.5, 0.5};
  const std::vector<Real> block1 = {0.1, 0.2, 0.3, 0.9};

  qsim::StateVector joint(3);
  std::vector<Real> amps;
  amps.insert(amps.end(), block0.begin(), block0.end());
  amps.insert(amps.end(), block1.begin(), block1.end());
  // Normalize jointly.
  Real norm = 0;
  for (Real a : amps) norm += a * a;
  for (Real& a : amps) a /= std::sqrt(norm);
  joint.set_amplitudes_real(amps);
  qsim::run_circuit(cb, params, joint);

  for (int b = 0; b < 2; ++b) {
    qsim::StateVector single(2);
    std::vector<Real> block = b == 0 ? block0 : block1;
    Real bn = 0;
    for (Real a : block) bn += a * a;
    for (Real& a : block) a /= std::sqrt(bn);
    single.set_amplitudes_real(block);
    qsim::run_circuit(cp, params, single);
    // Compare joint block (renormalized) to the single-sample run.
    const Real block_weight = std::sqrt(bn / norm);
    for (Index k = 0; k < 4; ++k) {
      const Complex joint_amp = joint.amplitude(static_cast<Index>(b) * 4 + k);
      const Complex expect = single.amplitude(k) * block_weight;
      EXPECT_NEAR(std::abs(joint_amp - expect), 0, 1e-12);
    }
  }
}

}  // namespace
}  // namespace qugeo::core
