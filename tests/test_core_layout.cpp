// Qubit layout: register placement, qubit budgets, QuBatch block decoding.
#include <gtest/gtest.h>

#include "core/layout.h"

namespace qugeo::core {
namespace {

TEST(Layout, SingleGroupNoBatch) {
  const QubitLayout lay({8}, 0);
  EXPECT_EQ(lay.total_qubits(), 8u);
  EXPECT_EQ(lay.sample_size(), 256u);
  EXPECT_EQ(lay.batch_size(), 1u);
  EXPECT_EQ(lay.data_qubits().size(), 8u);
  EXPECT_EQ(lay.group(0).offset, 0u);
}

TEST(Layout, BatchAddsLogBQubitsPerGroup) {
  // The paper's QuBatch overhead: G * log2(B) extra qubits.
  const QubitLayout b2({8}, 1);
  EXPECT_EQ(b2.total_qubits(), 9u);
  EXPECT_EQ(b2.batch_size(), 2u);
  const QubitLayout b4({8}, 2);
  EXPECT_EQ(b4.total_qubits(), 10u);
  const QubitLayout grouped({7, 7}, 1);
  EXPECT_EQ(grouped.total_qubits(), 16u);  // 2*(7+1)
}

TEST(Layout, TwoGroupRegisterOffsets) {
  const QubitLayout lay({7, 7}, 0);
  EXPECT_EQ(lay.total_qubits(), 14u);
  EXPECT_EQ(lay.sample_size(), 256u);
  EXPECT_EQ(lay.group(0).offset, 0u);
  EXPECT_EQ(lay.group(1).offset, 7u);
  EXPECT_EQ(lay.data_qubits().size(), 14u);
  EXPECT_EQ(lay.data_qubits()[7], 7u);
}

TEST(Layout, BlockOfWithoutBatchIsZero) {
  const QubitLayout lay({3}, 0);
  for (Index k = 0; k < 8; ++k) EXPECT_EQ(lay.block_of(k), 0u);
}

TEST(Layout, BlockOfSingleGroup) {
  const QubitLayout lay({2}, 1);  // qubits 0-1 data, qubit 2 batch
  EXPECT_EQ(lay.block_of(0b000), 0u);
  EXPECT_EQ(lay.block_of(0b011), 0u);
  EXPECT_EQ(lay.block_of(0b100), 1u);
  EXPECT_EQ(lay.block_of(0b111), 1u);
}

TEST(Layout, BlockOfTwoGroupsRequiresAgreement) {
  // Groups of 1 data qubit each with 1 batch qubit:
  // register0 = qubits {0 data, 1 batch}; register1 = {2 data, 3 batch}.
  const QubitLayout lay({1, 1}, 1);
  EXPECT_EQ(lay.total_qubits(), 4u);
  EXPECT_EQ(lay.block_of(0b0000), 0u);
  EXPECT_EQ(lay.block_of(0b1010), 1u);  // both batch bits set
  EXPECT_EQ(lay.block_of(0b0010), QubitLayout::kInvalidBlock);  // disagree
  EXPECT_EQ(lay.block_of(0b1000), QubitLayout::kInvalidBlock);
}

TEST(Layout, Validation) {
  EXPECT_THROW(QubitLayout({}, 0), std::invalid_argument);
  EXPECT_THROW(QubitLayout({0}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace qugeo::core
