// Gate library: unitarity, known matrices, analytic derivatives vs finite
// differences.
#include <gtest/gtest.h>

#include <cmath>

#include "qsim/gate.h"

namespace qugeo::qsim {
namespace {

constexpr Real kTol = 1e-12;

bool is_unitary(const Mat2& u) {
  // u * u^dagger == I
  const Mat2 d = dagger(u);
  Complex r00 = u(0, 0) * d(0, 0) + u(0, 1) * d(1, 0);
  Complex r01 = u(0, 0) * d(0, 1) + u(0, 1) * d(1, 1);
  Complex r10 = u(1, 0) * d(0, 0) + u(1, 1) * d(1, 0);
  Complex r11 = u(1, 0) * d(0, 1) + u(1, 1) * d(1, 1);
  return std::abs(r00 - Complex{1, 0}) < 1e-12 && std::abs(r01) < 1e-12 &&
         std::abs(r10) < 1e-12 && std::abs(r11 - Complex{1, 0}) < 1e-12;
}

TEST(GateMatrix, PauliXSquaresToIdentity) {
  const Mat2 x = gate_matrix(GateKind::kX, {});
  EXPECT_NEAR(std::abs(x(0, 1) - Complex{1, 0}), 0, kTol);
  EXPECT_NEAR(std::abs(x(1, 0) - Complex{1, 0}), 0, kTol);
  EXPECT_TRUE(is_unitary(x));
}

TEST(GateMatrix, HadamardIsUnitary) {
  EXPECT_TRUE(is_unitary(gate_matrix(GateKind::kH, {})));
}

TEST(GateMatrix, SdgIsInverseOfS) {
  const Mat2 s = gate_matrix(GateKind::kS, {});
  const Mat2 sdg = gate_matrix(GateKind::kSdg, {});
  const Complex prod = s(1, 1) * sdg(1, 1);
  EXPECT_NEAR(prod.real(), 1.0, kTol);
  EXPECT_NEAR(prod.imag(), 0.0, kTol);
}

TEST(GateMatrix, TGatePhase) {
  const Mat2 t = gate_matrix(GateKind::kT, {});
  EXPECT_NEAR(t(1, 1).real(), std::sqrt(0.5), kTol);
  EXPECT_NEAR(t(1, 1).imag(), std::sqrt(0.5), kTol);
}

TEST(GateMatrix, RotationsAreUnitaryAcrossAngles) {
  for (const GateKind kind : {GateKind::kRX, GateKind::kRY, GateKind::kRZ,
                              GateKind::kPhase}) {
    for (Real a : {-2.5, -0.3, 0.0, 0.7, 3.1}) {
      const Real params[] = {a};
      EXPECT_TRUE(is_unitary(gate_matrix(kind, params)))
          << gate_name(kind) << " angle " << a;
    }
  }
}

TEST(GateMatrix, U3IsUnitaryAcrossAngles) {
  for (Real t : {0.1, 1.2, 2.9}) {
    for (Real p : {-1.0, 0.5}) {
      for (Real l : {-0.4, 2.2}) {
        const Real params[] = {t, p, l};
        EXPECT_TRUE(is_unitary(gate_matrix(GateKind::kU3, params)));
      }
    }
  }
}

TEST(GateMatrix, U3ReducesToRYWhenPhasesVanish) {
  const Real params[] = {0.8, 0.0, 0.0};
  const Mat2 u = gate_matrix(GateKind::kU3, params);
  const Mat2 ry = gate_matrix(GateKind::kRY, params);
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c)
      EXPECT_NEAR(std::abs(u(r, c) - ry(r, c)), 0, kTol);
}

TEST(GateMatrix, RZU3Relation) {
  // u3(0, 0, lambda) == p(lambda) up to the OpenQASM convention.
  const Real params[] = {0.0, 0.0, 1.3};
  const Mat2 u = gate_matrix(GateKind::kU3, params);
  EXPECT_NEAR(std::abs(u(0, 0) - Complex{1, 0}), 0, kTol);
  EXPECT_NEAR(std::abs(u(1, 1) - std::exp(Complex{0, 1.3})), 0, kTol);
}

TEST(GateMatrix, SwapHasNoBlockForm) {
  EXPECT_THROW((void)gate_matrix(GateKind::kSWAP, {}), std::invalid_argument);
}

class GateDerivTest
    : public ::testing::TestWithParam<std::tuple<GateKind, int, Real>> {};

TEST_P(GateDerivTest, MatchesFiniteDifference) {
  const auto [kind, slot, angle] = GetParam();
  std::array<Real, 3> params{angle, 0.4, -0.9};
  const Mat2 analytic = gate_matrix_deriv(kind, params, slot);

  const Real eps = 1e-6;
  std::array<Real, 3> plus = params, minus = params;
  plus[static_cast<std::size_t>(slot)] += eps;
  minus[static_cast<std::size_t>(slot)] -= eps;
  const Mat2 up = gate_matrix(kind, plus);
  const Mat2 um = gate_matrix(kind, minus);
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c) {
      const Complex fd = (up(r, c) - um(r, c)) / (2 * eps);
      EXPECT_NEAR(std::abs(analytic(r, c) - fd), 0, 1e-7)
          << gate_name(kind) << " slot " << slot << " entry " << r << c;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllParamGates, GateDerivTest,
    ::testing::Values(
        std::make_tuple(GateKind::kRX, 0, 0.3),
        std::make_tuple(GateKind::kRX, 0, -1.7),
        std::make_tuple(GateKind::kRY, 0, 0.9),
        std::make_tuple(GateKind::kRY, 0, 2.4),
        std::make_tuple(GateKind::kRZ, 0, -0.6),
        std::make_tuple(GateKind::kRZ, 0, 1.1),
        std::make_tuple(GateKind::kPhase, 0, 0.5),
        std::make_tuple(GateKind::kCRY, 0, 1.9),
        std::make_tuple(GateKind::kU3, 0, 0.7),
        std::make_tuple(GateKind::kU3, 1, 0.7),
        std::make_tuple(GateKind::kU3, 2, 0.7),
        std::make_tuple(GateKind::kCU3, 0, -1.2),
        std::make_tuple(GateKind::kCU3, 1, -1.2),
        std::make_tuple(GateKind::kCU3, 2, -1.2)));

TEST(GateMeta, ParamCounts) {
  EXPECT_EQ(gate_param_count(GateKind::kX), 0);
  EXPECT_EQ(gate_param_count(GateKind::kRX), 1);
  EXPECT_EQ(gate_param_count(GateKind::kU3), 3);
  EXPECT_EQ(gate_param_count(GateKind::kCU3), 3);
  EXPECT_EQ(gate_param_count(GateKind::kSWAP), 0);
}

TEST(GateMeta, QubitCounts) {
  EXPECT_EQ(gate_qubit_count(GateKind::kH), 1);
  EXPECT_EQ(gate_qubit_count(GateKind::kCX), 2);
  EXPECT_EQ(gate_qubit_count(GateKind::kSWAP), 2);
  EXPECT_EQ(gate_qubit_count(GateKind::kCU3), 2);
}

TEST(GateMeta, ControlledClassification) {
  EXPECT_TRUE(gate_is_controlled_1q(GateKind::kCX));
  EXPECT_TRUE(gate_is_controlled_1q(GateKind::kCU3));
  EXPECT_FALSE(gate_is_controlled_1q(GateKind::kSWAP));
  EXPECT_FALSE(gate_is_controlled_1q(GateKind::kU3));
}

}  // namespace
}  // namespace qugeo::qsim
