// The noise-robustness ablation path: the same QuGeoModel predicts through
// the statevector, density-matrix, and trajectory backends purely via
// ExecutionConfig — no call-site special-casing — and the exact channel
// agrees with its sampled estimator within statistical tolerance.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/model.h"

namespace qugeo::core {
namespace {

data::ScaledSample random_sample(std::size_t wave_size, std::size_t vel_size,
                                 Rng& rng) {
  data::ScaledSample s;
  s.waveform.resize(wave_size);
  s.velocity.resize(vel_size);
  rng.fill_uniform(s.waveform, -1, 1);
  rng.fill_uniform(s.velocity, 0, 1);
  return s;
}

ModelConfig small_config(DecoderKind dec) {
  ModelConfig mc;
  mc.group_data_qubits = {3};
  mc.ansatz.blocks = 2;
  mc.decoder = dec;
  mc.vel_rows = dec == DecoderKind::kLayer ? 3 : 2;
  mc.vel_cols = 2;
  return mc;
}

std::vector<std::vector<Real>> predict_with(QuGeoModel& model,
                                            const qsim::ExecutionConfig& exec,
                                            std::span<const data::ScaledSample* const> ptrs) {
  model.set_execution_config(exec);
  return model.predict(ptrs);
}

TEST(BackendAblation, DensityAtZeroNoiseMatchesStatevectorPredictions) {
  Rng rng(1);
  QuGeoModel model(small_config(DecoderKind::kLayer), rng);
  std::vector<data::ScaledSample> samples;
  for (int i = 0; i < 2; ++i) samples.push_back(random_sample(8, 6, rng));
  std::vector<const data::ScaledSample*> ptrs;
  for (const auto& s : samples) ptrs.push_back(&s);

  qsim::ExecutionConfig exec;  // statevector
  const auto p_sv = predict_with(model, exec, ptrs);
  exec.backend = qsim::BackendKind::kDensityMatrix;
  const auto p_dm = predict_with(model, exec, ptrs);

  ASSERT_EQ(p_sv.size(), p_dm.size());
  for (std::size_t i = 0; i < p_sv.size(); ++i)
    for (std::size_t k = 0; k < p_sv[i].size(); ++k)
      ASSERT_NEAR(p_sv[i][k], p_dm[i][k], 1e-10);
}

TEST(BackendAblation, ExactAndSampledNoisyPredictionsAgree) {
  // The registered cross-validation: exact depolarizing channel vs. its
  // trajectory estimator, end-to-end through QuGeoModel via ExecutionConfig
  // alone. Pixel decoder too, so both readout forms are covered.
  for (const DecoderKind dec : {DecoderKind::kLayer, DecoderKind::kPixel}) {
    Rng rng(2);
    QuGeoModel model(small_config(dec), rng);
    std::vector<data::ScaledSample> samples;
    const std::size_t vel = dec == DecoderKind::kLayer ? 6 : 4;
    for (int i = 0; i < 2; ++i) samples.push_back(random_sample(8, vel, rng));
    std::vector<const data::ScaledSample*> ptrs;
    for (const auto& s : samples) ptrs.push_back(&s);

    qsim::ExecutionConfig exec;
    exec.noise.gate_error_prob = 0.02;
    exec.backend = qsim::BackendKind::kDensityMatrix;
    const auto p_exact = predict_with(model, exec, ptrs);

    exec.backend = qsim::BackendKind::kTrajectory;
    exec.trajectories = 3000;
    exec.seed = 4242;
    const auto p_traj = predict_with(model, exec, ptrs);

    ASSERT_EQ(p_exact.size(), p_traj.size());
    for (std::size_t i = 0; i < p_exact.size(); ++i)
      for (std::size_t k = 0; k < p_exact[i].size(); ++k)
        ASSERT_NEAR(p_exact[i][k], p_traj[i][k], 0.05)
            << "decoder " << static_cast<int>(dec);
  }
}

TEST(BackendAblation, NoiseShiftsPredictionsAwayFromNoiseless) {
  // Sanity direction check: a strong exact channel must move the decoded
  // maps (otherwise the config is not actually reaching the backend).
  Rng rng(3);
  QuGeoModel model(small_config(DecoderKind::kLayer), rng);
  const data::ScaledSample s = random_sample(8, 6, rng);
  const std::vector<const data::ScaledSample*> ptrs = {&s};

  qsim::ExecutionConfig exec;
  const auto clean = predict_with(model, exec, ptrs);
  exec.backend = qsim::BackendKind::kDensityMatrix;
  exec.noise.gate_error_prob = 0.2;
  const auto noisy = predict_with(model, exec, ptrs);

  Real diff = 0;
  for (std::size_t k = 0; k < clean[0].size(); ++k)
    diff += std::abs(clean[0][k] - noisy[0][k]);
  EXPECT_GT(diff, 1e-4);
}

TEST(BackendAblation, TrainingGradientsStayOnAdjointPath) {
  // loss_and_gradient is documented to use the exact statevector + adjoint
  // pass regardless of the inference backend; it must keep working (and
  // produce identical gradients) with a noisy backend configured.
  Rng rng(4);
  QuGeoModel model(small_config(DecoderKind::kLayer), rng);
  std::vector<data::ScaledSample> samples = {random_sample(8, 6, rng)};
  const std::vector<const data::ScaledSample*> ptrs = {&samples[0]};

  std::vector<Real> g_clean(model.num_params(), Real(0));
  const Real l_clean = model.loss_and_gradient(ptrs, g_clean);

  qsim::ExecutionConfig exec;
  exec.backend = qsim::BackendKind::kTrajectory;
  exec.noise.gate_error_prob = 0.1;
  exec.trajectories = 4;
  model.set_execution_config(exec);
  std::vector<Real> g_noisy(model.num_params(), Real(0));
  const Real l_noisy = model.loss_and_gradient(ptrs, g_noisy);

  EXPECT_EQ(l_clean, l_noisy);
  for (std::size_t k = 0; k < g_clean.size(); ++k)
    EXPECT_EQ(g_clean[k], g_noisy[k]);
}

TEST(BackendAblation, EnvOverrideReachesModelConstruction) {
  ::setenv("QUGEO_BACKEND", "trajectory", 1);
  Rng rng(5);
  const QuGeoModel model(small_config(DecoderKind::kLayer), rng);
  ::unsetenv("QUGEO_BACKEND");
  EXPECT_EQ(model.execution_config().backend, qsim::BackendKind::kTrajectory);
}

}  // namespace
}  // namespace qugeo::core
