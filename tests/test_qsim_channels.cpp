// NoiseModel channel conformance: every Kraus set is CPTP to 1e-12, the
// exact density-matrix evolution matches hand-computed 1-qubit fixtures
// (amplitude damping of |1>, phase damping of |+>), the depolarizing
// fast path equals its Kraus form, and trajectory sampling converges to
// the exact channel for every channel kind (readout included).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdlib>
#include <span>
#include <string>

#include "common/rng.h"
#include "qsim/backend.h"
#include "qsim/density_matrix.h"
#include "qsim/encoding.h"
#include "qsim/noise.h"

namespace qugeo::qsim {
namespace {

constexpr NoiseChannel kAllChannels[] = {NoiseChannel::kDepolarizing,
                                         NoiseChannel::kAmplitudeDamping,
                                         NoiseChannel::kPhaseDamping};

void expect_completeness(std::span<const Mat2> kraus, const std::string& what) {
  // sum_k K_k^+ K_k = I (trace preservation of the CPTP map).
  Mat2 sum;
  for (const Mat2& k : kraus) {
    const Mat2 kd = dagger(k);
    for (int r = 0; r < 2; ++r)
      for (int c = 0; c < 2; ++c)
        sum(r, c) += kd(r, 0) * k(0, c) + kd(r, 1) * k(1, c);
  }
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c) {
      const Complex expected = r == c ? Complex{1, 0} : Complex{0, 0};
      EXPECT_NEAR(std::abs(sum(r, c) - expected), 0.0, 1e-12)
          << what << " entry (" << r << "," << c << ")";
    }
}

TEST(Channels, AllKrausSetsAreCPTP) {
  for (const NoiseChannel ch : kAllChannels)
    for (const Real p : {0.0, 0.05, 0.3, 0.75, 1.0})
      expect_completeness(kraus_ops(ch, p),
                          std::string(noise_channel_name(ch)) + " p=" +
                              std::to_string(p));
  for (const Real e : {0.0, 0.02, 0.5, 1.0})
    expect_completeness(readout_kraus(e), "readout e=" + std::to_string(e));
  EXPECT_THROW((void)kraus_ops(NoiseChannel::kAmplitudeDamping, 1.5),
               std::invalid_argument);
  EXPECT_THROW((void)readout_kraus(-0.1), std::invalid_argument);
}

TEST(Channels, ChannelNamesRoundTrip) {
  for (const NoiseChannel ch : kAllChannels) {
    const auto parsed = parse_noise_channel(noise_channel_name(ch));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, ch);
  }
  EXPECT_EQ(parse_noise_channel("amp"), NoiseChannel::kAmplitudeDamping);
  EXPECT_EQ(parse_noise_channel("phase"), NoiseChannel::kPhaseDamping);
  EXPECT_FALSE(parse_noise_channel("thermal").has_value());
}

TEST(Channels, AmplitudeDampingOfExcitedState) {
  // |1><1| under amplitude damping gamma: relaxes to
  // gamma |0><0| + (1-gamma) |1><1| — the T1 decay fixture.
  const Real gamma = 0.3;
  StateVector one(1);
  one.apply_antidiag_1q(Complex{1, 0}, Complex{1, 0}, 0);  // X|0> = |1>
  DensityMatrix rho = DensityMatrix::from_state(one);
  rho.apply_kraus(kraus_ops(NoiseChannel::kAmplitudeDamping, gamma), 0);

  EXPECT_NEAR(rho.element(0, 0).real(), gamma, 1e-12);
  EXPECT_NEAR(rho.element(1, 1).real(), 1 - gamma, 1e-12);
  EXPECT_NEAR(std::abs(rho.element(0, 1)), 0.0, 1e-12);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
  EXPECT_NEAR(rho.expect_z(0), 2 * gamma - 1, 1e-12);
}

TEST(Channels, AmplitudeDampingShrinksPlusCoherence) {
  // |+><+| under amplitude damping gamma: populations pick up the decay
  // (rho00 = (1+gamma)/2), the coherence shrinks by sqrt(1-gamma).
  const Real gamma = 0.4;
  StateVector plus(1);
  plus.apply_1q(gate_matrix(GateKind::kH, {}), 0);
  DensityMatrix rho = DensityMatrix::from_state(plus);
  rho.apply_kraus(kraus_ops(NoiseChannel::kAmplitudeDamping, gamma), 0);

  EXPECT_NEAR(rho.element(0, 0).real(), (1 + gamma) / 2, 1e-12);
  EXPECT_NEAR(rho.element(1, 1).real(), (1 - gamma) / 2, 1e-12);
  EXPECT_NEAR(rho.element(0, 1).real(), std::sqrt(1 - gamma) / 2, 1e-12);
  EXPECT_NEAR(rho.element(0, 1).imag(), 0.0, 1e-12);
}

TEST(Channels, PhaseDampingOfPlusState) {
  // |+><+| under phase damping lambda: populations untouched, coherence
  // multiplied by sqrt(1-lambda) — the pure-T2 fixture.
  const Real lambda = 0.5;
  StateVector plus(1);
  plus.apply_1q(gate_matrix(GateKind::kH, {}), 0);
  DensityMatrix rho = DensityMatrix::from_state(plus);
  rho.apply_kraus(kraus_ops(NoiseChannel::kPhaseDamping, lambda), 0);

  EXPECT_NEAR(rho.element(0, 0).real(), 0.5, 1e-12);
  EXPECT_NEAR(rho.element(1, 1).real(), 0.5, 1e-12);
  EXPECT_NEAR(rho.element(0, 1).real(), std::sqrt(1 - lambda) / 2, 1e-12);
  EXPECT_NEAR(rho.element(1, 0).real(), std::sqrt(1 - lambda) / 2, 1e-12);
  EXPECT_NEAR(rho.expect_z(0), 0.0, 1e-12);
}

TEST(Channels, DepolarizingFastPathMatchesKrausForm) {
  // DensityMatrix::depolarize (the in-place fast path run_circuit_density
  // uses) must equal the generic apply_kraus of the depolarizing set.
  Rng rng(3);
  StateVector psi(2);
  std::vector<Real> data(psi.dim());
  rng.fill_uniform(data, -1, 1);
  encode_amplitudes(data, psi);
  psi.apply_1q(gate_matrix(GateKind::kH, {}), 0);

  const Real p = 0.13;
  DensityMatrix fast = DensityMatrix::from_state(psi);
  DensityMatrix generic = DensityMatrix::from_state(psi);
  fast.depolarize(1, p);
  generic.apply_kraus(kraus_ops(NoiseChannel::kDepolarizing, p), 1);
  for (Index r = 0; r < fast.dim(); ++r)
    for (Index c = 0; c < fast.dim(); ++c)
      EXPECT_NEAR(std::abs(fast.element(r, c) - generic.element(r, c)), 0.0,
                  1e-12)
          << "(" << r << "," << c << ")";
}

TEST(Channels, ReadoutKrausIsConfusionMatrixOnDiagonal) {
  // The bit-flip Kraus channel acts on the diagonal exactly like the
  // classical readout confusion matrix: p0' = (1-e) p0 + e p1.
  const Real e = 0.07;
  StateVector psi(1);
  psi.apply_1q(gate_matrix(GateKind::kRY, std::array<Real, 1>{0.8}), 0);
  DensityMatrix rho = DensityMatrix::from_state(psi);
  const Real p0 = rho.element(0, 0).real();
  const Real p1 = rho.element(1, 1).real();
  rho.apply_kraus(readout_kraus(e), 0);
  EXPECT_NEAR(rho.element(0, 0).real(), (1 - e) * p0 + e * p1, 1e-12);
  EXPECT_NEAR(rho.element(1, 1).real(), (1 - e) * p1 + e * p0, 1e-12);
}

Circuit mixing_circuit() {
  Circuit c(2);
  c.h(0);
  c.ry(1, 0.8);
  c.cx(0, 1);
  c.ry(0, 0.5);
  return c;
}

TEST(Channels, TrajectorySamplingConvergesToExactChannelForEveryKind) {
  // The Kraus-jump trajectory estimator must agree with the exact
  // density-matrix channel within statistical tolerance for every channel
  // kind, including the readout bit-flip error.
  const Circuit c = mixing_circuit();
  const std::vector<Index> qubits = {0, 1};
  struct Case {
    NoiseModel noise;
    const char* what;
  };
  NoiseModel amp;
  amp.gate_error_prob = 0.08;
  amp.channel = NoiseChannel::kAmplitudeDamping;
  NoiseModel phase;
  phase.gate_error_prob = 0.08;
  phase.channel = NoiseChannel::kPhaseDamping;
  NoiseModel depol;
  depol.gate_error_prob = 0.05;
  NoiseModel readout;
  readout.readout_error = 0.06;
  NoiseModel combined = amp;
  combined.readout_error = 0.04;
  const Case cases[] = {{depol, "depolarizing"},
                        {amp, "amplitude_damping"},
                        {phase, "phase_damping"},
                        {readout, "readout"},
                        {combined, "amplitude_damping+readout"}};

  for (const Case& tc : cases) {
    ExecutionConfig cfg;
    cfg.noise = tc.noise;
    cfg.backend = BackendKind::kDensityMatrix;
    DensityMatrixBackend dm(cfg);
    dm.run(c, {});

    cfg.backend = BackendKind::kTrajectory;
    cfg.trajectories = 4000;
    cfg.seed = 1234;
    TrajectoryBackend traj(cfg);
    traj.run(c, {});

    const auto z_dm = dm.expect_z(qubits);
    const auto z_tr = traj.expect_z(qubits);
    for (std::size_t i = 0; i < qubits.size(); ++i)
      EXPECT_NEAR(z_tr[i], z_dm[i], 0.05) << tc.what << " qubit " << i;
    const auto p_dm = dm.probabilities();
    const auto p_tr = traj.probabilities();
    for (std::size_t k = 0; k < p_dm.size(); ++k)
      EXPECT_NEAR(p_tr[k], p_dm[k], 0.05) << tc.what << " state " << k;
  }
}

TEST(Channels, TrajectoriesStayNormalizedUnderDampingJumps) {
  // Kraus jumps renormalize after each application; every trajectory must
  // leave the state on the unit sphere.
  const Circuit c = mixing_circuit();
  for (const NoiseChannel ch :
       {NoiseChannel::kAmplitudeDamping, NoiseChannel::kPhaseDamping}) {
    NoiseModel noise;
    noise.gate_error_prob = 0.35;
    noise.channel = ch;
    noise.readout_error = 0.1;
    Rng rng(11);
    for (int t = 0; t < 20; ++t) {
      StateVector psi(2);
      run_circuit_noisy(c, {}, psi, noise, rng);
      EXPECT_NEAR(psi.norm_sq(), 1.0, 1e-10) << noise_channel_name(ch);
    }
  }
}

TEST(Channels, OversizedDensityRequestNamesTheChannel) {
  // Satellite fix: the density -> statevector fallback is only exact for a
  // trivial NoiseModel. Any active channel above the dense cap must throw
  // an error naming the channel, never silently fall back.
  const Index too_big = max_density_qubits() + 1;
  ExecutionConfig cfg;
  cfg.backend = BackendKind::kDensityMatrix;
  EXPECT_EQ(make_backend(cfg, too_big)->kind(), BackendKind::kStatevector);

  cfg.noise.gate_error_prob = 0.01;
  cfg.noise.channel = NoiseChannel::kAmplitudeDamping;
  try {
    (void)make_backend(cfg, too_big);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("amplitude_damping"),
              std::string::npos)
        << err.what();
  }

  cfg.noise.gate_error_prob = 0;
  cfg.noise.readout_error = 0.02;
  try {
    (void)make_backend(cfg, too_big);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("readout"), std::string::npos)
        << err.what();
  }

  // A shot wrapper owns the readout error, so the wrapped density request
  // degenerates to a trivial inner model and the exact substitution is
  // legal again.
  cfg.shots = 1024;
  EXPECT_EQ(make_backend(cfg, too_big)->kind(), BackendKind::kShot);

  ::setenv("QUGEO_NOISE_CHANNEL", "phase_damping", 1);
  EXPECT_EQ(apply_env_overrides(ExecutionConfig{}).noise.channel,
            NoiseChannel::kPhaseDamping);
  ::setenv("QUGEO_NOISE_CHANNEL", "not-a-channel", 1);
  EXPECT_THROW((void)apply_env_overrides(ExecutionConfig{}),
               std::invalid_argument);
  ::unsetenv("QUGEO_NOISE_CHANNEL");
}

}  // namespace
}  // namespace qugeo::qsim
