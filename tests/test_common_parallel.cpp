// Thread-pool contract tests: full coverage of the iteration space, inline
// nested execution, fixed-order reduction — and the end-to-end guarantee
// the pool was designed around: train_model is bit-identical for
// QUGEO_THREADS=1 and QUGEO_THREADS=4.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"
#include "core/trainer.h"

namespace qugeo {
namespace {

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    set_num_threads(threads);
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(0, hits.size(), [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
  set_num_threads(0);  // restore the env/default configuration
}

TEST(Parallel, ChunkedCoversRangeWithoutOverlap) {
  set_num_threads(4);
  std::vector<std::atomic<int>> hits(777);
  parallel_for_chunked(0, hits.size(), 10, [&](std::size_t lo, std::size_t hi) {
    EXPECT_LT(lo, hi);
    for (std::size_t i = lo; i < hi; ++i)
      hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  set_num_threads(0);
}

TEST(Parallel, EmptyAndSingleRanges) {
  set_num_threads(4);
  std::atomic<int> calls{0};
  parallel_for(5, 5, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
  set_num_threads(0);
}

TEST(Parallel, NestedCallsRunInline) {
  set_num_threads(4);
  std::vector<std::atomic<int>> hits(64 * 16);
  parallel_for(0, 64, [&](std::size_t outer) {
    // Inner fan-out must not deadlock against the pool it runs on.
    parallel_for(0, 16, [&](std::size_t inner) {
      hits[outer * 16 + inner].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  set_num_threads(0);
}

TEST(Parallel, ExceptionsPropagateAndPoolSurvives) {
  set_num_threads(4);
  EXPECT_THROW(parallel_for(0, 100,
                            [](std::size_t i) {
                              if (i == 37) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // The pool must be fully quiesced and reusable after the throw.
  std::vector<std::atomic<int>> hits(100);
  parallel_for(0, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  set_num_threads(0);
}

TEST(Parallel, MapReduceIsFixedOrder) {
  // Summing pathologically-scaled doubles: any reordering of the fold
  // changes the bits, so equality across thread counts proves the
  // reduction order is schedule-independent.
  std::vector<double> values(500);
  for (std::size_t i = 0; i < values.size(); ++i)
    values[i] = (i % 2 == 0 ? 1e16 : 1.0) / static_cast<double>(i + 1);

  std::vector<double> sums;
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{3}}) {
    set_num_threads(threads);
    sums.push_back(parallel_map_reduce(
        values.size(), 0.0, [&](std::size_t i) { return values[i]; },
        [](double acc, double x) { return acc + x; }));
  }
  set_num_threads(0);
  EXPECT_EQ(sums[0], sums[1]);
  EXPECT_EQ(sums[0], sums[2]);
}

std::uint64_t bits_of(Real v) {
  std::uint64_t u = 0;
  static_assert(sizeof(u) == sizeof(v));
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

/// Small learnable dataset in the style of test_core_trainer.cpp: targets
/// depend deterministically on the waveform.
data::ScaledDataset tiny_dataset(std::size_t n, Rng& rng) {
  constexpr std::size_t kWave = 8, kRows = 3, kCols = 2;
  data::ScaledDataset ds;
  ds.scaler_name = "synthetic";
  ds.nsrc = 1;
  ds.nt = 1;
  ds.nrec = kWave;
  ds.vel_rows = kRows;
  ds.vel_cols = kCols;
  ds.samples.resize(n);
  for (auto& s : ds.samples) {
    s.waveform.resize(kWave);
    rng.fill_uniform(s.waveform, -1, 1);
    s.velocity.resize(kRows * kCols);
    const std::size_t chunk = kWave / kRows;
    for (std::size_t i = 0; i < kRows; ++i) {
      Real m = 0;
      for (std::size_t k = 0; k < chunk; ++k)
        m += std::abs(s.waveform[i * chunk + k]);
      const Real v = m / static_cast<Real>(chunk);
      for (std::size_t j = 0; j < kCols; ++j) s.velocity[i * kCols + j] = v;
    }
  }
  return ds;
}

TEST(Parallel, TrainModelBitIdenticalAcrossThreadCounts) {
  // The full training loop — QuBatch chunk fan-out in the gradient
  // accumulation plus parallel prediction in the per-epoch eval — must
  // produce bit-identical parameters and curves for 1 vs 4 threads.
  Rng data_rng(21);
  const data::ScaledDataset ds = tiny_dataset(12, data_rng);
  const data::SplitView split = data::split_dataset(12, 8);

  core::TrainConfig tcfg;
  tcfg.epochs = 2;
  tcfg.initial_lr = 0.05;
  tcfg.chunks_per_step = 2;

  std::vector<std::vector<Real>> runs;
  std::vector<std::vector<core::EpochRecord>> curves;
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    set_num_threads(threads);
    core::ModelConfig mcfg;
    mcfg.group_data_qubits = {3};
    mcfg.ansatz.blocks = 2;
    mcfg.vel_rows = 3;
    mcfg.vel_cols = 2;
    Rng init_rng(23);
    core::QuGeoModel model(mcfg, init_rng);
    const core::TrainResult r = core::train_model(model, ds, split, tcfg);
    runs.push_back(model.parameters());
    curves.push_back(r.curve);
  }
  set_num_threads(0);

  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t k = 0; k < runs[0].size(); ++k)
    EXPECT_EQ(bits_of(runs[0][k]), bits_of(runs[1][k])) << "param " << k;
  ASSERT_EQ(curves[0].size(), curves[1].size());
  for (std::size_t e = 0; e < curves[0].size(); ++e) {
    EXPECT_EQ(bits_of(curves[0][e].train_loss), bits_of(curves[1][e].train_loss));
    EXPECT_EQ(bits_of(curves[0][e].test_mse), bits_of(curves[1][e].test_mse));
    EXPECT_EQ(bits_of(curves[0][e].test_ssim), bits_of(curves[1][e].test_ssim));
  }
}

}  // namespace
}  // namespace qugeo
