// Parameterized FDTD sweeps: stability and kinematics across stencil
// orders and grid spacings (property-style coverage of the solver).
#include <gtest/gtest.h>

#include <cmath>

#include "seismic/fdtd.h"

namespace qugeo::seismic {
namespace {

class StencilOrder : public ::testing::TestWithParam<int> {};

TEST_P(StencilOrder, StaysStableAtCflBound) {
  const int order = GetParam();
  const VelocityModel m(Grid2D{30, 30, 10, 10}, 4500.0);  // fastest rock
  FdtdConfig cfg;
  cfg.space_order = order;
  cfg.dt = 0.99 * max_stable_dt(m, order);
  cfg.nt = 400;
  const RickerWavelet w(15.0);
  const ReceiverLine rec = make_receiver_line(30, 5);
  const ShotGather g = simulate_shot(m, {0, 15}, w, rec, cfg);
  for (std::size_t t = 0; t < g.nt(); ++t)
    for (std::size_t r = 0; r < g.nrec(); ++r)
      ASSERT_TRUE(std::isfinite(g.at(t, r))) << "order " << order;
}

TEST_P(StencilOrder, EnergyBoundedOverLongRun) {
  const int order = GetParam();
  const VelocityModel m(Grid2D{24, 24, 10, 10}, 2000.0);
  FdtdConfig cfg;
  cfg.space_order = order;
  cfg.dt = 0.9 * max_stable_dt(m, order);
  cfg.nt = 2000;
  const RickerWavelet w(15.0);
  const auto frames = simulate_wavefield(m, {12, 12}, w, cfg, {300, 1999});
  ASSERT_EQ(frames.size(), 2u);
  Real e_early = 0, e_late = 0;
  for (Real v : frames[0]) e_early += v * v;
  for (Real v : frames[1]) e_late += v * v;
  EXPECT_LT(e_late, e_early);  // absorbing boundaries remove energy
}

TEST_P(StencilOrder, TravelTimeIndependentOfOrder) {
  const int order = GetParam();
  const Real c = 2500.0;
  const VelocityModel m(Grid2D{50, 50, 10, 10}, c);
  FdtdConfig cfg;
  cfg.space_order = order;
  cfg.dt = 0.5e-3;
  cfg.nt = 500;
  const RickerWavelet w(15.0);
  ReceiverLine rec;
  rec.iz = 0;
  rec.ix = {45};
  const ShotGather g = simulate_shot(m, {0, 5}, w, rec, cfg);

  Real peak = 0;
  std::size_t arrival = g.nt();
  for (std::size_t t = 0; t < g.nt(); ++t)
    peak = std::max(peak, std::abs(g.at(t, 0)));
  for (std::size_t t = 0; t < g.nt(); ++t)
    if (std::abs(g.at(t, 0)) > 0.2 * peak) {
      arrival = t;
      break;
    }
  const Real t_expected = 400.0 / c + w.delay();
  EXPECT_NEAR(static_cast<Real>(arrival) * cfg.dt, t_expected, 0.06)
      << "order " << order;
}

INSTANTIATE_TEST_SUITE_P(Orders, StencilOrder, ::testing::Values(2, 4, 8));

class GridSpacing : public ::testing::TestWithParam<Real> {};

TEST_P(GridSpacing, CflBoundScalesLinearlyWithSpacing) {
  const Real h = GetParam();
  const VelocityModel coarse(Grid2D{16, 16, h, h}, 3000.0);
  const VelocityModel fine(Grid2D{16, 16, h / 2, h / 2}, 3000.0);
  EXPECT_NEAR(max_stable_dt(coarse, 4) / max_stable_dt(fine, 4), 2.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Spacings, GridSpacing,
                         ::testing::Values(5.0, 10.0, 12.5, 25.0));

TEST(FdtdSweep, CflBoundInverseInVelocity) {
  const VelocityModel slow(Grid2D{16, 16, 10, 10}, 1500.0);
  const VelocityModel fast(Grid2D{16, 16, 10, 10}, 4500.0);
  EXPECT_NEAR(max_stable_dt(slow, 4) / max_stable_dt(fast, 4), 3.0, 1e-9);
}

}  // namespace
}  // namespace qugeo::seismic
