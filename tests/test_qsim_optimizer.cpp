// Peephole optimizer: semantic preservation (fidelity 1 on random states)
// plus targeted rewrites.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "qsim/encoding.h"
#include "qsim/executor.h"
#include "qsim/optimizer.h"

namespace qugeo::qsim {
namespace {

StateVector random_state(Index qubits, Rng& rng) {
  StateVector psi(qubits);
  std::vector<Real> data(psi.dim());
  rng.fill_uniform(data, -1, 1);
  encode_amplitudes(data, psi);
  return psi;
}

void expect_equivalent(const Circuit& a, const Circuit& b,
                       std::span<const Real> params, std::uint64_t seed) {
  Rng rng(seed);
  StateVector sa = random_state(a.num_qubits(), rng);
  StateVector sb = sa;
  run_circuit(a, params, sa);
  run_circuit(b, params, sb);
  EXPECT_NEAR(sa.fidelity(sb), 1.0, 1e-10);
}

TEST(Optimizer, CancelsAdjacentSelfInversePairs) {
  Circuit c(2);
  c.h(0);
  c.h(0);
  c.cx(0, 1);
  c.cx(0, 1);
  c.x(1);
  OptimizeStats stats;
  const Circuit opt = optimize_circuit(c, {}, &stats);
  EXPECT_EQ(opt.num_ops(), 1u);
  EXPECT_EQ(stats.cancelled_pairs, 2u);
  expect_equivalent(c, opt, {}, 1);
}

TEST(Optimizer, SwapCancellationIsOperandOrderInsensitive) {
  Circuit c(3);
  c.swap(0, 2);
  c.swap(2, 0);
  const Circuit opt = optimize_circuit(c);
  EXPECT_EQ(opt.num_ops(), 0u);
}

TEST(Optimizer, CancellationSkipsCommutingSpectators) {
  // H(0) H(0) with a gate on qubit 1 in between still cancels.
  Circuit c(2);
  c.h(0);
  c.ry(1, 0.4);
  c.h(0);
  const Circuit opt = optimize_circuit(c);
  EXPECT_EQ(opt.num_ops(), 1u);
  expect_equivalent(c, opt, {}, 2);
}

TEST(Optimizer, BlockedCancellationIsNotApplied) {
  // An intervening gate on the same qubit blocks the pair.
  Circuit c(1);
  c.h(0);
  c.t(0);
  c.h(0);
  const Circuit opt = optimize_circuit(c);
  EXPECT_EQ(opt.num_ops(), 3u);
}

TEST(Optimizer, FusesLiteralRotations) {
  Circuit c(1);
  c.rx(0, 0.3);
  c.rx(0, 0.5);
  c.rz(0, 1.0);
  OptimizeStats stats;
  const Circuit opt = optimize_circuit(c, {}, &stats);
  EXPECT_EQ(opt.num_ops(), 2u);
  EXPECT_EQ(stats.fused_rotations, 1u);
  EXPECT_NEAR(opt.ops()[0].literals[0], 0.8, 1e-12);
  expect_equivalent(c, opt, {}, 3);
}

TEST(Optimizer, FusionCanCascadeToIdentity) {
  Circuit c(1);
  c.ry(0, 0.7);
  c.ry(0, -0.7);
  const Circuit opt = optimize_circuit(c);
  EXPECT_EQ(opt.num_ops(), 0u);
}

TEST(Optimizer, DropsIdentityRotations) {
  Circuit c(2);
  c.rx(0, 0.0);
  c.rz(1, 4 * kPi);
  c.phase(0, 2 * kPi);
  c.ry(1, 0.2);
  OptimizeStats stats;
  const Circuit opt = optimize_circuit(c, {}, &stats);
  EXPECT_EQ(opt.num_ops(), 1u);
  EXPECT_EQ(stats.dropped_identities, 3u);
  expect_equivalent(c, opt, {}, 4);
}

TEST(Optimizer, TrainableRotationsAreNeverTouched) {
  Circuit c(1);
  const ParamRef p = c.new_param();
  const ParamRef q = c.new_param();
  c.rx(0, p);
  c.rx(0, q);
  const Circuit opt = optimize_circuit(c);
  EXPECT_EQ(opt.num_ops(), 2u);
  EXPECT_EQ(opt.num_params(), 2u);
  const std::vector<Real> params = {0.4, -1.1};
  expect_equivalent(c, opt, params, 5);
}

TEST(Optimizer, PreservesParameterIds) {
  Circuit c(2);
  const ParamRef p3 = c.new_params(3);
  c.h(0);
  c.h(0);  // cancels
  c.u3(1, p3);
  const Circuit opt = optimize_circuit(c);
  ASSERT_EQ(opt.num_ops(), 1u);
  EXPECT_EQ(opt.ops()[0].param_ids[0], p3.id);
  EXPECT_EQ(opt.num_params(), 3u);
}

TEST(Optimizer, RandomCircuitsStayEquivalent) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    Circuit c(3);
    for (int g = 0; g < 30; ++g) {
      switch (rng.uniform_int(0, 5)) {
        case 0: c.h(static_cast<Index>(rng.uniform_int(0, 2))); break;
        case 1: c.x(static_cast<Index>(rng.uniform_int(0, 2))); break;
        case 2: c.rx(static_cast<Index>(rng.uniform_int(0, 2)),
                     rng.uniform(-3, 3)); break;
        case 3: {
          const auto a = static_cast<Index>(rng.uniform_int(0, 2));
          const auto b = static_cast<Index>(rng.uniform_int(0, 2));
          if (a != b) c.cx(a, b);
          break;
        }
        case 4: c.rz(static_cast<Index>(rng.uniform_int(0, 2)), 0.0); break;
        default: c.t(static_cast<Index>(rng.uniform_int(0, 2))); break;
      }
    }
    const Circuit opt = optimize_circuit(c);
    EXPECT_LE(opt.num_ops(), c.num_ops());
    expect_equivalent(c, opt, {}, 100 + static_cast<std::uint64_t>(trial));
  }
}

TEST(Optimizer, StatsAccounting) {
  Circuit c(1);
  c.x(0);
  c.x(0);
  c.rx(0, 0.0);
  OptimizeStats stats;
  (void)optimize_circuit(c, {}, &stats);
  EXPECT_EQ(stats.ops_before, 3u);
  EXPECT_EQ(stats.ops_after, 0u);
}

// ------------------------------------------------------------- run fusion --

TEST(FuseRuns, CollapsesMixedLiteralRunIntoOneU3) {
  Circuit c(1);
  c.h(0);
  c.rx(0, 0.4);
  c.t(0);
  c.ry(0, -1.2);
  FuseStats stats;
  const Circuit fused = fuse_gate_runs(c, &stats);
  EXPECT_EQ(fused.num_ops(), 1u);
  EXPECT_EQ(fused.ops()[0].kind, GateKind::kU3);
  EXPECT_EQ(stats.fused_runs, 1u);
  expect_equivalent(c, fused, {}, 21);
}

TEST(FuseRuns, MergesDiagonalRunIntoOnePhase) {
  Circuit c(1);
  c.rz(0, 0.3);
  c.t(0);
  c.s(0);
  c.phase(0, -0.8);
  c.z(0);
  FuseStats stats;
  const Circuit fused = fuse_gate_runs(c, &stats);
  ASSERT_EQ(fused.num_ops(), 1u);
  EXPECT_EQ(fused.ops()[0].kind, GateKind::kPhase);
  EXPECT_EQ(stats.merged_diagonal_runs, 1u);
  EXPECT_EQ(stats.fused_runs, 0u);
  expect_equivalent(c, fused, {}, 22);
}

TEST(FuseRuns, AntiDiagonalRunBecomesU3) {
  Circuit c(1);
  c.x(0);
  c.z(0);
  c.x(0);
  c.x(0);
  const Circuit fused = fuse_gate_runs(c);
  EXPECT_EQ(fused.num_ops(), 1u);
  expect_equivalent(c, fused, {}, 23);
}

TEST(FuseRuns, SpectatorOpsDoNotBreakTheRun) {
  // Ops on other qubits commute with the run; the fused gate lands at the
  // run's first position.
  Circuit d(3);
  d.h(0);
  d.ry(1, 0.4);
  d.cx(1, 2);
  d.t(0);
  d.rx(0, 0.9);
  FuseStats stats;
  const Circuit fused = fuse_gate_runs(d, &stats);
  // h/t/rx on qubit 0 fuse to one u3; ry + cx survive.
  EXPECT_EQ(fused.num_ops(), 3u);
  EXPECT_EQ(stats.fused_runs, 1u);
  expect_equivalent(d, fused, {}, 24);
}

TEST(FuseRuns, ControlledGateOnQubitEndsRun) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);  // touches qubit 0: run of length 1 stays untouched
  c.h(0);
  const Circuit fused = fuse_gate_runs(c);
  EXPECT_EQ(fused.num_ops(), 3u);
  expect_equivalent(c, fused, {}, 25);
}

TEST(FuseRuns, TrainableGatesAreNeverFused) {
  Circuit c(1);
  const ParamRef p = c.new_param();
  c.h(0);
  c.rx(0, p);
  c.h(0);
  const Circuit fused = fuse_gate_runs(c);
  EXPECT_EQ(fused.num_ops(), 3u);
  EXPECT_EQ(fused.num_params(), 1u);
  const std::vector<Real> params = {0.7};
  expect_equivalent(c, fused, params, 26);
}

TEST(FuseRuns, SingleGatesPassThroughVerbatim) {
  // No run of length >= 2 anywhere: the op stream must be untouched.
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  c.ry(1, 0.3);
  c.swap(0, 1);
  const Circuit fused = fuse_gate_runs(c);
  ASSERT_EQ(fused.num_ops(), c.num_ops());
  for (std::size_t i = 0; i < c.num_ops(); ++i) {
    EXPECT_EQ(fused.ops()[i].kind, c.ops()[i].kind);
    EXPECT_EQ(fused.ops()[i].qubits[0], c.ops()[i].qubits[0]);
    EXPECT_EQ(fused.ops()[i].literals[0], c.ops()[i].literals[0]);
  }
}

TEST(FuseRuns, RandomCircuitsStayEquivalent) {
  Rng rng(88);
  for (int trial = 0; trial < 10; ++trial) {
    Circuit c(3);
    for (int g = 0; g < 40; ++g) {
      const auto q = static_cast<Index>(rng.uniform_int(0, 2));
      switch (rng.uniform_int(0, 6)) {
        case 0: c.h(q); break;
        case 1: c.x(q); break;
        case 2: c.rx(q, rng.uniform(-3, 3)); break;
        case 3: c.rz(q, rng.uniform(-3, 3)); break;
        case 4: c.u3(q, rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)); break;
        case 5: {
          const auto t = static_cast<Index>(rng.uniform_int(0, 2));
          if (q != t) c.cx(q, t);
          break;
        }
        default: c.s(q); break;
      }
    }
    const Circuit fused = fuse_gate_runs(c);
    EXPECT_LE(fused.num_ops(), c.num_ops());
    expect_equivalent(c, fused, {}, 200 + static_cast<std::uint64_t>(trial));
  }
}

TEST(FuseRuns, CanonicalizeForBackendIsFuseGateRuns) {
  Circuit c(1);
  c.h(0);
  c.h(0);
  const Circuit canon = canonicalize_for_backend(c);
  EXPECT_EQ(canon.num_ops(), 1u);  // H·H = I -> diagonal product -> one phase
}

}  // namespace
}  // namespace qugeo::qsim
