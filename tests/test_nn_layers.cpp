// Layer forward/backward: every layer's parameter and input gradients are
// checked against central finite differences on random data.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/layers.h"
#include "nn/loss.h"

namespace qugeo::nn {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, Rng& rng) {
  Tensor t(std::move(shape));
  rng.fill_uniform(t.data_mut(), -1, 1);
  return t;
}

/// Scalar loss = sum of elementwise products with fixed random weights;
/// gives a dense, nontrivial gradient at the output.
struct ProbeLoss {
  Tensor weights;

  explicit ProbeLoss(const Tensor& like, Rng& rng) : weights(like.shape()) {
    rng.fill_uniform(weights.data_mut(), -1, 1);
  }
  Real value(const Tensor& y) const {
    Real s = 0;
    for (std::size_t i = 0; i < y.numel(); ++i) s += weights[i] * y[i];
    return s;
  }
  Tensor grad() const { return weights; }
};

/// Check dL/d(input) and dL/d(params) of `layer` against finite differences.
void grad_check(Layer& layer, Tensor input, Real tol = 1e-5) {
  Rng rng(777);
  Tensor out = layer.forward(input);
  ProbeLoss loss(out, rng);

  for (Param* p : layer.params()) p->grad.zero();
  const Tensor din = layer.backward(loss.grad());

  const Real eps = 1e-5;
  // Input gradient.
  for (std::size_t i = 0; i < input.numel(); ++i) {
    Tensor plus = input, minus = input;
    plus[i] += eps;
    minus[i] -= eps;
    const Real fd =
        (loss.value(layer.forward(plus)) - loss.value(layer.forward(minus))) /
        (2 * eps);
    ASSERT_NEAR(din[i], fd, tol) << "input grad " << i;
  }
  // Parameter gradients (layer caches from the last forward; rerun first).
  (void)layer.forward(input);
  for (Param* p : layer.params()) p->grad.zero();
  (void)layer.backward(loss.grad());
  for (Param* p : layer.params()) {
    for (std::size_t i = 0; i < p->numel(); ++i) {
      const Real saved = p->value[i];
      p->value[i] = saved + eps;
      const Real lp = loss.value(layer.forward(input));
      p->value[i] = saved - eps;
      const Real lm = loss.value(layer.forward(input));
      p->value[i] = saved;
      ASSERT_NEAR(p->grad[i], (lp - lm) / (2 * eps), tol) << "param grad " << i;
    }
  }
}

TEST(Conv2d, OutputShape) {
  Rng rng(1);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  const Tensor y = conv.forward(random_tensor({2, 2, 8, 8}, rng));
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 3, 8, 8}));
}

TEST(Conv2d, StrideAndNoPadding) {
  Rng rng(2);
  Conv2d conv(1, 1, 3, 2, 0, rng);
  const Tensor y = conv.forward(random_tensor({1, 1, 9, 9}, rng));
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{1, 1, 4, 4}));
}

TEST(Conv2d, KnownConvolutionValue) {
  Rng rng(3);
  Conv2d conv(1, 1, 2, 1, 0, rng);
  // Set kernel to all ones, bias to zero: output = window sums.
  conv.params()[0]->value.fill(1.0);
  conv.params()[1]->value.fill(0.0);
  Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor y = conv.forward(x);
  ASSERT_EQ(y.numel(), 1u);
  EXPECT_NEAR(y[0], 10.0, 1e-12);
}

TEST(Conv2d, GradCheck) {
  Rng rng(4);
  Conv2d conv(2, 2, 3, 1, 1, rng);
  grad_check(conv, random_tensor({1, 2, 5, 5}, rng));
}

TEST(Conv2d, GradCheckStridedUnpadded) {
  Rng rng(5);
  Conv2d conv(1, 2, 3, 2, 0, rng);
  grad_check(conv, random_tensor({1, 1, 7, 7}, rng));
}

TEST(Linear, KnownProduct) {
  Rng rng(6);
  Linear lin(2, 1, rng);
  lin.params()[0]->value = Tensor({1, 2}, {2, 3});
  lin.params()[1]->value = Tensor({1}, {1});
  const Tensor y = lin.forward(Tensor({1, 2}, {10, 20}));
  EXPECT_NEAR(y[0], 2 * 10 + 3 * 20 + 1, 1e-12);
}

TEST(Linear, GradCheck) {
  Rng rng(7);
  Linear lin(6, 4, rng);
  grad_check(lin, random_tensor({3, 6}, rng));
}

TEST(ReLU, ForwardClampsNegatives) {
  ReLU relu;
  const Tensor y = relu.forward(Tensor({4}, {-1, 0, 2, -3}));
  EXPECT_EQ(y[0], 0.0);
  EXPECT_EQ(y[2], 2.0);
}

TEST(ReLU, GradCheck) {
  Rng rng(8);
  ReLU relu;
  // Keep values away from the kink for a clean finite-difference check.
  Tensor x = random_tensor({2, 5}, rng);
  for (std::size_t i = 0; i < x.numel(); ++i)
    if (std::abs(x[i]) < 0.1) x[i] = 0.5;
  grad_check(relu, x);
}

TEST(Sigmoid, RangeAndMidpoint) {
  Sigmoid s;
  const Tensor y = s.forward(Tensor({3}, {-100, 0, 100}));
  EXPECT_NEAR(y[0], 0.0, 1e-12);
  EXPECT_NEAR(y[1], 0.5, 1e-12);
  EXPECT_NEAR(y[2], 1.0, 1e-12);
}

TEST(Sigmoid, GradCheck) {
  Rng rng(9);
  Sigmoid s;
  grad_check(s, random_tensor({2, 4}, rng));
}

TEST(MaxPool2d, SelectsWindowMax) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 2, 2}, {1, 5, 3, 2});
  const Tensor y = pool.forward(x);
  ASSERT_EQ(y.numel(), 1u);
  EXPECT_EQ(y[0], 5.0);
}

TEST(MaxPool2d, GradRoutesToArgmax) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 2, 2}, {1, 5, 3, 2});
  (void)pool.forward(x);
  const Tensor g = pool.backward(Tensor({1, 1, 1, 1}, {2.0}));
  EXPECT_EQ(g[0], 0.0);
  EXPECT_EQ(g[1], 2.0);  // the max position
  EXPECT_EQ(g[2], 0.0);
}

TEST(MaxPool2d, GradCheck) {
  Rng rng(10);
  MaxPool2d pool(2);
  // Distinct values avoid argmax ties that break finite differences.
  Tensor x({1, 2, 4, 4});
  for (std::size_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<Real>(i % 7) + 0.01 * static_cast<Real>(i);
  grad_check(pool, x);
}

TEST(Flatten, RoundTrip) {
  Flatten f;
  Rng rng(11);
  const Tensor x = random_tensor({2, 3, 2, 2}, rng);
  const Tensor y = f.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 12}));
  const Tensor g = f.backward(y);
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(Sequential, ChainsAndCountsParams) {
  Rng rng(12);
  Sequential net;
  net.emplace<Conv2d>(1, 2, 3, 1, 1, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>(2);
  net.emplace<Flatten>();
  net.emplace<Linear>(2 * 2 * 2, 3, rng);
  const Tensor y = net.forward(random_tensor({1, 1, 4, 4}, rng));
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(net.param_count(), 2u * (9 + 1) + (8u * 3 + 3));
}

TEST(Sequential, GradCheckEndToEnd) {
  Rng rng(13);
  Sequential net;
  net.emplace<Conv2d>(1, 2, 3, 1, 1, rng);
  net.emplace<Sigmoid>();
  net.emplace<Flatten>();
  net.emplace<Linear>(2 * 4 * 4, 3, rng);
  grad_check(net, random_tensor({1, 1, 4, 4}, rng), 2e-5);
}

TEST(Loss, MseValueAndGrad) {
  const Tensor pred({3}, {1, 2, 3});
  const Tensor target({3}, {1, 1, 1});
  const LossResult r = mse_loss(pred, target);
  EXPECT_NEAR(r.value, (0 + 1 + 4) / 3.0, 1e-12);
  EXPECT_NEAR(r.grad[1], 2.0 / 3.0, 1e-12);
}

TEST(Loss, SseValueAndGrad) {
  const Tensor pred({2}, {2, -1});
  const Tensor target({2}, {0, 0});
  const LossResult r = sse_loss(pred, target);
  EXPECT_NEAR(r.value, 5.0, 1e-12);
  EXPECT_NEAR(r.grad[0], 4.0, 1e-12);
  EXPECT_NEAR(r.grad[1], -2.0, 1e-12);
}

}  // namespace
}  // namespace qugeo::nn
