// Fault-injection substrate: spec parsing, FaultScope firing windows,
// backoff schedule, retry semantics, degradation records, and propagation
// of injected faults out of the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/parallel.h"

namespace qugeo::fault {
namespace {

using std::chrono::milliseconds;

TEST(FaultSpecParse, SiteAndNth) {
  const FaultSpec s = parse_fault_spec("backend.run:3");
  EXPECT_EQ(s.site, "backend.run");
  EXPECT_EQ(s.nth, 3u);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.kind, FaultKind::kTransient);
}

TEST(FaultSpecParse, ExplicitCountAndForever) {
  const FaultSpec s = parse_fault_spec("io.rename:2:5");
  EXPECT_EQ(s.nth, 2u);
  EXPECT_EQ(s.count, 5u);
  const FaultSpec forever = parse_fault_spec("pool.task:1:*");
  EXPECT_EQ(forever.count, 0u);
  const FaultSpec zero = parse_fault_spec("pool.task:4:0");
  EXPECT_EQ(zero.count, 0u);
}

TEST(FaultSpecParse, MalformedSpecsRejected) {
  EXPECT_THROW((void)parse_fault_spec("no-colon"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec(":1"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec("site:"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec("site:abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec("site:0"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec("site:1:x"), std::invalid_argument);
}

TEST(FaultScopeTest, UnarmedSiteIsFree) {
  EXPECT_FALSE(any_fault_armed());
  site("test.unarmed");  // must be a no-op, not a throw
}

TEST(FaultScopeTest, FiresExactlyTheConfiguredWindow) {
  FaultScope scope("test.window", 2, 2);
  EXPECT_TRUE(any_fault_armed());
  site("test.window");                                 // hit 1: before window
  EXPECT_THROW(site("test.window"), TransientError);   // hit 2
  EXPECT_THROW(site("test.window"), TransientError);   // hit 3
  site("test.window");                                 // hit 4: past window
  EXPECT_EQ(scope.hits(), 4u);
}

TEST(FaultScopeTest, OtherSitesUnaffectedAndDisarmsOnExit) {
  {
    FaultScope scope("test.site-a", 1);
    site("test.site-b");  // different site: no fire
    EXPECT_EQ(scope.hits(), 0u);
  }
  site("test.site-a");  // scope gone: no fire
  EXPECT_FALSE(any_fault_armed());
}

TEST(FaultScopeTest, FatalKindFiresFatalError) {
  FaultScope scope("test.fatal", 1, 1, FaultKind::kFatal);
  EXPECT_THROW(site("test.fatal"), FatalError);
}

TEST(FaultScopeTest, InjectedMessageNamesSiteAndHit) {
  FaultScope scope("test.message", 1);
  try {
    site("test.message");
    FAIL() << "site must fire";
  } catch (const TransientError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("test.message"), std::string::npos) << msg;
    EXPECT_NE(msg.find("hit 1"), std::string::npos) << msg;
  }
}

TEST(FaultEnvTest, ReloadArmsAndDisarmsFromEnvironment) {
  ASSERT_EQ(setenv("QUGEO_FAULT", "test.env:1", 1), 0);
  reload_from_env();
  EXPECT_TRUE(any_fault_armed());
  EXPECT_THROW(site("test.env"), TransientError);
  site("test.env");  // count defaulted to 1: second hit passes

  ASSERT_EQ(unsetenv("QUGEO_FAULT"), 0);
  reload_from_env();
  EXPECT_FALSE(any_fault_armed());
  site("test.env");
}

TEST(BackoffTest, DoublesFromInitialAndCaps) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_delay = milliseconds(10);
  policy.multiplier = 2.0;
  policy.max_delay = milliseconds(50);
  const auto delays = backoff_delays(policy);
  const std::vector<milliseconds> expected = {
      milliseconds(10), milliseconds(20), milliseconds(40), milliseconds(50),
      milliseconds(50)};
  EXPECT_EQ(delays, expected);
}

TEST(BackoffTest, SingleAttemptPolicyHasNoDelays) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  EXPECT_TRUE(backoff_delays(policy).empty());
}

TEST(RetryTest, RecoversAfterTransientFailures) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  std::vector<std::pair<std::size_t, milliseconds>> waits;
  policy.on_retry = [&](std::size_t attempt, milliseconds delay) {
    waits.emplace_back(attempt, delay);
  };
  std::size_t calls = 0;
  const int result = retry_on_transient("flaky op", policy, [&] {
    if (++calls < 3) throw TransientError("glitch");
    return 42;
  });
  EXPECT_EQ(result, 42);
  EXPECT_EQ(calls, 3u);
  // Backoff sequence observed through the test hook: 1ms then 2ms.
  ASSERT_EQ(waits.size(), 2u);
  EXPECT_EQ(waits[0], (std::pair<std::size_t, milliseconds>(1, milliseconds(1))));
  EXPECT_EQ(waits[1], (std::pair<std::size_t, milliseconds>(2, milliseconds(2))));
}

TEST(RetryTest, ExhaustionBecomesFatalWithContext) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.on_retry = [](std::size_t, milliseconds) {};
  std::size_t calls = 0;
  try {
    retry_on_transient("checkpoint write to /tmp/ck.0", policy, [&]() -> int {
      ++calls;
      throw TransientError("disk glitch");
    });
    FAIL() << "must exhaust";
  } catch (const FatalError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("checkpoint write to /tmp/ck.0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("3 attempt(s)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("disk glitch"), std::string::npos) << msg;
  }
  EXPECT_EQ(calls, 3u);
}

TEST(RetryTest, FatalErrorIsNeverRetried) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  std::size_t calls = 0;
  EXPECT_THROW(retry_on_transient("op", policy,
                                  [&]() -> int {
                                    ++calls;
                                    throw FatalError("contract violated");
                                  }),
               FatalError);
  EXPECT_EQ(calls, 1u);
}

TEST(PoolFaultTest, InjectedTaskFaultPropagatesToSubmitter) {
  const std::size_t before = num_threads();
  set_num_threads(2);  // force the fan-out path (the site lives in work_on)
  {
    FaultScope scope("pool.task", 1);
    EXPECT_THROW(
        parallel_for(0, 64, [](std::size_t) {}),
        TransientError);
    EXPECT_GE(scope.hits(), 1u);
  }
  // Disarmed: the same fan-out runs clean.
  std::atomic<std::size_t> ran{0};
  parallel_for(0, 64, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 64u);
  set_num_threads(before);
}

TEST(DegradationTest, EventsAreRecordedAndClearable) {
  clear_degradation_events();
  report_degradation("checkpoint", "skipping slot /tmp/ck.1 [crc-mismatch]");
  report_degradation("backend", "substituting statevector");
  const auto events = degradation_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].component, "checkpoint");
  EXPECT_NE(events[0].detail.find("crc-mismatch"), std::string::npos);
  EXPECT_EQ(events[1].component, "backend");
  clear_degradation_events();
  EXPECT_TRUE(degradation_events().empty());
}

}  // namespace
}  // namespace qugeo::fault
