// Image metrics: SSIM identity/symmetry/sensitivity properties, MSE/PSNR.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "metrics/image_metrics.h"

namespace qugeo::metrics {
namespace {

std::vector<Real> random_image(std::size_t n, Rng& rng) {
  std::vector<Real> img(n);
  rng.fill_uniform(img, 0, 1);
  return img;
}

TEST(Ssim, IdenticalImagesScoreOne) {
  Rng rng(1);
  const auto img = random_image(64, rng);
  EXPECT_NEAR(ssim(img, img, 8, 8), 1.0, 1e-12);
}

TEST(Ssim, SymmetricInArguments) {
  Rng rng(2);
  const auto a = random_image(64, rng);
  const auto b = random_image(64, rng);
  EXPECT_NEAR(ssim(a, b, 8, 8), ssim(b, a, 8, 8), 1e-12);
}

TEST(Ssim, BoundedAboveByOne) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const auto a = random_image(64, rng);
    const auto b = random_image(64, rng);
    EXPECT_LE(ssim(a, b, 8, 8), 1.0 + 1e-12);
  }
}

TEST(Ssim, NoisierImageScoresLower) {
  // Smooth structured reference (diagonal gradient), perturbed by noise of
  // two magnitudes.
  Rng rng(4);
  const std::size_t n = 16;
  std::vector<Real> ref(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      ref[i * n + j] = static_cast<Real>(i + j) / (2.0 * (n - 1));
  auto mild = ref, heavy = ref;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    mild[i] += rng.normal(0, 0.02);
    heavy[i] += rng.normal(0, 0.3);
  }
  SsimOptions opts;
  opts.data_range = 1.0;
  const Real s_mild = ssim(ref, mild, n, n, opts);
  const Real s_heavy = ssim(ref, heavy, n, n, opts);
  EXPECT_GT(s_mild, s_heavy);
  EXPECT_GT(s_mild, 0.7);
  EXPECT_LT(s_heavy, 0.6);
}

TEST(Ssim, StructureMattersBeyondMse) {
  // A constant offset and a sign-flipped detail pattern have the same MSE
  // but very different SSIM.
  const std::size_t n = 16;
  std::vector<Real> base(n * n), offset(n * n), flipped(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    const Real detail = ((i / n + i % n) % 2) ? 0.1 : -0.1;
    base[i] = 0.5 + detail;
    offset[i] = 0.5 + detail + 0.2;  // same structure, shifted mean
    flipped[i] = 0.5 - detail;       // anti-correlated structure, same mean
  }
  SsimOptions opts;
  opts.data_range = 1.0;
  EXPECT_NEAR(mse(base, offset), mse(base, flipped), 1e-12);
  EXPECT_GT(ssim(base, offset, n, n, opts), ssim(base, flipped, n, n, opts));
}

TEST(Ssim, SmallMapWindowShrinks) {
  // 8x8 velocity maps (the paper's output) must work with the default
  // window of 7 without throwing.
  Rng rng(5);
  const auto a = random_image(64, rng);
  const auto b = random_image(64, rng);
  const Real s = ssim(a, b, 8, 8);
  EXPECT_GE(s, -1.0);
  EXPECT_LE(s, 1.0);
}

TEST(Ssim, TinyImagesDegenerate) {
  const std::vector<Real> a = {0.5}, b = {0.5};
  EXPECT_NEAR(ssim(a, b, 1, 1), 1.0, 1e-9);
}

TEST(Ssim, ShapeValidation) {
  Rng rng(6);
  const auto a = random_image(64, rng);
  const auto b = random_image(64, rng);
  EXPECT_THROW((void)ssim(a, b, 7, 8), std::invalid_argument);
}

TEST(Mse, KnownValue) {
  const std::vector<Real> a = {1, 2, 3};
  const std::vector<Real> b = {1, 0, 0};
  EXPECT_NEAR(mse(a, b), (0 + 4 + 9) / 3.0, 1e-12);
}

TEST(Mse, ZeroForIdentical) {
  const std::vector<Real> a = {0.3, 0.7};
  EXPECT_EQ(mse(a, a), 0.0);
}

TEST(Mae, KnownValue) {
  const std::vector<Real> a = {1, -2};
  const std::vector<Real> b = {0, 2};
  EXPECT_NEAR(mae(a, b), (1 + 4) / 2.0, 1e-12);
}

TEST(Psnr, InfiniteForIdentical) {
  const std::vector<Real> a = {0.1, 0.9};
  EXPECT_TRUE(std::isinf(psnr(a, a, 1.0)));
}

TEST(Psnr, KnownValue) {
  const std::vector<Real> a = {1.0};
  const std::vector<Real> b = {0.9};
  // mse = 0.01, peak = 1 -> 10*log10(1/0.01) = 20 dB.
  EXPECT_NEAR(psnr(a, b, 1.0), 20.0, 1e-9);
}

TEST(Metrics, EmptyInputRejected) {
  const std::vector<Real> empty;
  EXPECT_THROW((void)mse(empty, empty), std::invalid_argument);
}

}  // namespace
}  // namespace qugeo::metrics
