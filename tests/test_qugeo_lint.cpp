// qugeo_lint's own coverage: the fixture trees under
// tools/qugeo_lint/fixtures must fail exactly the check they were built to
// fail (and the clean fixture must pass everything), and the real repo
// tree must be clean — the same verdict the `qugeo_lint` CTest entry and
// the CI lint job enforce.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "qugeo_lint/lint.h"

namespace qugeo::lint {
namespace {

std::filesystem::path fixture(const std::string& name) {
  return std::filesystem::path(QUGEO_LINT_FIXTURES_DIR) / name;
}

bool any_violation(const std::vector<Violation>& vs, const std::string& rule,
                   const std::string& message_fragment) {
  return std::any_of(vs.begin(), vs.end(), [&](const Violation& v) {
    return v.rule == rule &&
           v.message.find(message_fragment) != std::string::npos;
  });
}

std::string render(const std::vector<Violation>& vs) {
  std::string out;
  for (const auto& v : vs) out += to_string(v) + "\n";
  return out;
}

TEST(QugeoLint, CleanFixturePassesEveryCheck) {
  const auto violations = run_all_checks(fixture("clean"));
  EXPECT_TRUE(violations.empty()) << render(violations);
}

TEST(QugeoLint, MissingGateKindCaseFails) {
  const auto violations = check_gatekind_dispatch(fixture("missing_gatekind"));
  // The incomplete switch reports the one absent enumerator...
  EXPECT_TRUE(any_violation(violations, "gatekind-dispatch", "kGamma"))
      << render(violations);
  // ...and the handled ones are not reported.
  EXPECT_FALSE(any_violation(violations, "gatekind-dispatch", "kAlpha"));
  EXPECT_FALSE(any_violation(violations, "gatekind-dispatch", "kBeta"));
  // The silent `default:` at the second site is its own finding.
  EXPECT_TRUE(any_violation(violations, "gatekind-dispatch", "default"))
      << render(violations);
  EXPECT_EQ(violations.size(), 2u) << render(violations);
}

TEST(QugeoLint, UndocumentedEnvVarFailsBothDirections) {
  const auto violations = check_env_var_docs(fixture("undocumented_env"));
  EXPECT_TRUE(any_violation(violations, "env-var-docs", "QUGEO_SECRET"))
      << render(violations);
  EXPECT_TRUE(any_violation(violations, "env-var-docs", "QUGEO_GHOST"))
      << render(violations);
  EXPECT_EQ(violations.size(), 2u) << render(violations);
}

TEST(QugeoLint, StdRandAndTimeFail) {
  const auto violations = check_determinism(fixture("uses_rand"));
  EXPECT_TRUE(any_violation(violations, "determinism", "std::rand"))
      << render(violations);
  EXPECT_TRUE(any_violation(violations, "determinism", "time()"))
      << render(violations);
  // Exactly two: the comment, the string literal, and the waived line
  // must not be findings.
  EXPECT_EQ(violations.size(), 2u) << render(violations);
}

TEST(QugeoLint, UntestedFaultSiteFailsBothWays) {
  const auto violations =
      check_fault_site_coverage(fixture("untested_fault_site"));
  // The uncovered site is reported twice: no test injects into it, and
  // the docs registry does not list it.
  EXPECT_TRUE(any_violation(violations, "fault-site-coverage",
                            "\"demo.untested\" is registered in src/ but no "
                            "test"))
      << render(violations);
  EXPECT_TRUE(any_violation(violations, "fault-site-coverage",
                            "\"demo.untested\" is missing from the "
                            "docs/ARCHITECTURE.md"))
      << render(violations);
  // The covered site and the commented-out one produce nothing.
  EXPECT_FALSE(any_violation(violations, "fault-site-coverage", "demo.covered"));
  EXPECT_FALSE(
      any_violation(violations, "fault-site-coverage", "demo.commented-out"));
  EXPECT_EQ(violations.size(), 2u) << render(violations);
}

TEST(QugeoLint, UntestedSimdKernelFails) {
  const auto violations = check_simd_scalar_equivalence(fixture("untested_simd"));
  EXPECT_TRUE(any_violation(violations, "simd-scalar-equivalence",
                            "apply_untested_avx2"))
      << render(violations);
  // The covered kernel, the commented-out call, and the string-literal
  // mention produce nothing.
  EXPECT_FALSE(any_violation(violations, "simd-scalar-equivalence",
                             "apply_covered_avx2"));
  EXPECT_FALSE(any_violation(violations, "simd-scalar-equivalence",
                             "apply_commented_avx2"));
  EXPECT_FALSE(any_violation(violations, "simd-scalar-equivalence",
                             "some_stringonly_avx2"));
  EXPECT_EQ(violations.size(), 1u) << render(violations);
}

TEST(QugeoLint, UnroutedExecutionConfigKnobFails) {
  const auto violations =
      check_execution_config_env(fixture("unrouted_env_knob"));
  // beta has no base.beta assignment in apply_env_overrides.
  EXPECT_TRUE(any_violation(violations, "execution-config-env",
                            "`beta` is never assigned"))
      << render(violations);
  // delta is routed, but through a lenient C parser.
  EXPECT_TRUE(
      any_violation(violations, "execution-config-env", "lenient `strtoul`"))
      << render(violations);
  // echo is routed strictly but has no docs env-table row.
  EXPECT_TRUE(any_violation(violations, "execution-config-env",
                            "`echo` has no `QUGEO_ECHO`"))
      << render(violations);
  // The clean field and the waived field produce nothing.
  EXPECT_FALSE(any_violation(violations, "execution-config-env", "`alpha`"));
  EXPECT_FALSE(any_violation(violations, "execution-config-env", "`gamma`"));
  EXPECT_EQ(violations.size(), 3u) << render(violations);
}

TEST(QugeoLint, NegativeFixturesAreCleanElsewhere) {
  // Each negative fixture trips only its target check, so a regression
  // that cross-fires another rule is visible here.
  EXPECT_TRUE(check_determinism(fixture("missing_gatekind")).empty());
  EXPECT_TRUE(check_env_var_docs(fixture("missing_gatekind")).empty());
  EXPECT_TRUE(check_gatekind_dispatch(fixture("undocumented_env")).empty());
  EXPECT_TRUE(check_gatekind_dispatch(fixture("uses_rand")).empty());
  EXPECT_TRUE(check_fault_site_coverage(fixture("missing_gatekind")).empty());
  EXPECT_TRUE(check_fault_site_coverage(fixture("uses_rand")).empty());
  EXPECT_TRUE(check_env_var_docs(fixture("untested_fault_site")).empty());
  EXPECT_TRUE(check_determinism(fixture("untested_fault_site")).empty());
  EXPECT_TRUE(
      check_gatekind_dispatch(fixture("untested_fault_site")).empty());
  EXPECT_TRUE(check_simd_scalar_equivalence(fixture("missing_gatekind")).empty());
  EXPECT_TRUE(check_simd_scalar_equivalence(fixture("uses_rand")).empty());
  EXPECT_TRUE(
      check_simd_scalar_equivalence(fixture("untested_fault_site")).empty());
  EXPECT_TRUE(check_env_var_docs(fixture("untested_simd")).empty());
  EXPECT_TRUE(check_determinism(fixture("untested_simd")).empty());
  EXPECT_TRUE(check_gatekind_dispatch(fixture("untested_simd")).empty());
  EXPECT_TRUE(check_fault_site_coverage(fixture("untested_simd")).empty());
  // Check 7 no-ops on every tree without the real ExecutionConfig struct...
  EXPECT_TRUE(check_execution_config_env(fixture("missing_gatekind")).empty());
  EXPECT_TRUE(check_execution_config_env(fixture("undocumented_env")).empty());
  EXPECT_TRUE(check_execution_config_env(fixture("uses_rand")).empty());
  EXPECT_TRUE(
      check_execution_config_env(fixture("untested_fault_site")).empty());
  EXPECT_TRUE(check_execution_config_env(fixture("untested_simd")).empty());
  // ...and the check-7 fixture stays clean under the structural checks.
  // (check_env_var_docs is intentionally not asserted on it: its docs
  // table names QUGEO_BETA precisely because nothing routes it.)
  EXPECT_TRUE(check_gatekind_dispatch(fixture("unrouted_env_knob")).empty());
  EXPECT_TRUE(check_determinism(fixture("unrouted_env_knob")).empty());
  EXPECT_TRUE(
      check_fault_site_coverage(fixture("unrouted_env_knob")).empty());
  EXPECT_TRUE(
      check_simd_scalar_equivalence(fixture("unrouted_env_knob")).empty());
  EXPECT_TRUE(
      check_bench_micro_registration(fixture("unrouted_env_knob")).empty());
}

TEST(QugeoLint, RealRepositoryTreeIsClean) {
  const auto violations = run_all_checks(QUGEO_REPO_ROOT);
  EXPECT_TRUE(violations.empty()) << render(violations);
}

}  // namespace
}  // namespace qugeo::lint
