// Numeric helper properties.
#include <gtest/gtest.h>

#include "common/math_utils.h"

namespace qugeo {
namespace {

TEST(MathUtils, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(256));
  EXPECT_FALSE(is_pow2(255));
}

TEST(MathUtils, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(1024), 10u);
}

TEST(MathUtils, Log2Exact) {
  EXPECT_EQ(log2_exact(8), 3u);
  EXPECT_EQ(log2_exact(256), 8u);
  EXPECT_THROW((void)log2_exact(6), std::invalid_argument);
  EXPECT_THROW((void)log2_exact(0), std::invalid_argument);
}

TEST(MathUtils, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(8), 8u);
  EXPECT_EQ(next_pow2(9), 16u);
}

TEST(MathUtils, L2NormAndNormalize) {
  std::vector<Real> v = {3, 4};
  EXPECT_NEAR(l2_norm(v), 5.0, 1e-12);
  const Real n = normalize_l2(v);
  EXPECT_NEAR(n, 5.0, 1e-12);
  EXPECT_NEAR(v[0], 0.6, 1e-12);
  EXPECT_NEAR(v[1], 0.8, 1e-12);
}

TEST(MathUtils, NormalizeZeroVector) {
  std::vector<Real> v = {0, 0, 0, 0};
  const Real n = normalize_l2(v);
  EXPECT_EQ(n, 0.0);
  EXPECT_EQ(v[0], 1.0);  // canonical fallback direction
  EXPECT_EQ(v[1], 0.0);
}

TEST(MathUtils, MeanOfSpan) {
  const std::vector<Real> v = {1, 2, 3, 4};
  EXPECT_NEAR(mean(v), 2.5, 1e-12);
  EXPECT_EQ(mean(std::span<const Real>{}), 0.0);
}

TEST(MathUtils, ClampAndLerp) {
  EXPECT_EQ(clamp(5, 0, 3), 3);
  EXPECT_EQ(clamp(-1, 0, 3), 0);
  EXPECT_EQ(clamp(2, 0, 3), 2);
  EXPECT_NEAR(lerp(2.0, 4.0, 0.5), 3.0, 1e-12);
  EXPECT_NEAR(lerp(2.0, 4.0, 0.0), 2.0, 1e-12);
}

TEST(MathUtils, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-10));
  EXPECT_FALSE(approx_equal(1.0, 1.01));
  EXPECT_TRUE(approx_equal(1e8, 1e8 * (1 + 1e-8)));
}

}  // namespace
}  // namespace qugeo
