// Scaled-dataset serialization round trip and env-driven configuration.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "data/cache.h"

namespace qugeo::data {
namespace {

class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "qugeo_cache_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

ScaledDataset tiny_dataset(std::size_t n) {
  ScaledDataset ds;
  ds.scaler_name = "test";
  ds.samples.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ds.samples[i].waveform.assign(ds.waveform_size(),
                                  static_cast<Real>(i) + 0.5);
    ds.samples[i].velocity.assign(ds.velocity_size(),
                                  static_cast<Real>(i) * 0.1);
  }
  return ds;
}

TEST_F(CacheTest, SaveLoadRoundTrip) {
  const ScaledDataset ds = tiny_dataset(4);
  save_scaled_dataset(dir_ / "ds", ds);
  EXPECT_TRUE(scaled_dataset_exists(dir_ / "ds"));
  const ScaledDataset back = load_scaled_dataset(dir_ / "ds");
  EXPECT_EQ(back.size(), 4u);
  EXPECT_EQ(back.nsrc, ds.nsrc);
  EXPECT_EQ(back.vel_rows, ds.vel_rows);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(back.samples[i].waveform, ds.samples[i].waveform);
    EXPECT_EQ(back.samples[i].velocity, ds.samples[i].velocity);
  }
}

TEST_F(CacheTest, ExistsIsFalseForMissing) {
  EXPECT_FALSE(scaled_dataset_exists(dir_ / "nothing"));
}

TEST(CacheConfig, EnvOverrides) {
  setenv("QUGEO_SAMPLES", "32", 1);
  setenv("QUGEO_TRAIN", "24", 1);
  setenv("QUGEO_SEED", "777", 1);
  const ExperimentDataConfig cfg = experiment_config_from_env();
  EXPECT_EQ(cfg.num_samples, 32u);
  EXPECT_EQ(cfg.train_count, 24u);
  EXPECT_EQ(cfg.seed, 777u);
  unsetenv("QUGEO_SAMPLES");
  unsetenv("QUGEO_TRAIN");
  unsetenv("QUGEO_SEED");
}

TEST(CacheConfig, TrainClampedBelowTotal) {
  setenv("QUGEO_SAMPLES", "20", 1);
  setenv("QUGEO_TRAIN", "50", 1);
  const ExperimentDataConfig cfg = experiment_config_from_env();
  EXPECT_LT(cfg.train_count, cfg.num_samples);
  unsetenv("QUGEO_SAMPLES");
  unsetenv("QUGEO_TRAIN");
}

TEST(CacheConfig, EpochsFromEnv) {
  unsetenv("QUGEO_EPOCHS");
  EXPECT_EQ(epochs_from_env(123), 123u);
  setenv("QUGEO_EPOCHS", "55", 1);
  EXPECT_EQ(epochs_from_env(123), 55u);
  unsetenv("QUGEO_EPOCHS");
}

}  // namespace
}  // namespace qugeo::data
