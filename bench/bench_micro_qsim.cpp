// Microbenchmarks of the quantum-simulation substrate: gate application,
// full QuGeoVQC ansatz execution, adjoint gradients, encoder synthesis —
// the quantities behind the QuBatch complexity argument (Sec. 3.3.3).
#include <benchmark/benchmark.h>

#include "bench_micro_main.h"

#include "common/rng.h"
#include "core/ansatz.h"
#include "core/encoder.h"
#include "qsim/encoding.h"
#include "qsim/executor.h"
#include "qsim/observables.h"

namespace {

using namespace qugeo;

void BM_Apply1QGate(benchmark::State& state) {
  const auto qubits = static_cast<Index>(state.range(0));
  qsim::StateVector psi(qubits);
  const qsim::Mat2 h = qsim::gate_matrix(qsim::GateKind::kH, {});
  Index q = 0;
  for (auto _ : state) {
    psi.apply_1q(h, q);
    q = (q + 1) % qubits;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(psi.dim()));
}
BENCHMARK(BM_Apply1QGate)->Arg(8)->Arg(10)->Arg(12)->Arg(16)->Arg(20);

void BM_ApplyControlledGate(benchmark::State& state) {
  const auto qubits = static_cast<Index>(state.range(0));
  qsim::StateVector psi(qubits);
  const Real params[] = {0.3, 0.7, -0.4};
  const qsim::Mat2 u = qsim::gate_matrix(qsim::GateKind::kCU3, params);
  for (auto _ : state) psi.apply_controlled_1q(u, 0, qubits - 1);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(psi.dim()));
}
BENCHMARK(BM_ApplyControlledGate)->Arg(8)->Arg(12)->Arg(16);

void BM_DiagonalHeavyCircuit(benchmark::State& state) {
  // Phase-only workload: RZ/Z/S/T layers with a CZ ring — the gate mix the
  // diagonal fast path targets (no amplitude mixing at all).
  const auto qubits = static_cast<Index>(state.range(0));
  qsim::Circuit c(qubits);
  auto p = c.new_params(static_cast<std::uint32_t>(4 * qubits));
  std::uint32_t next = p.id;
  for (int layer = 0; layer < 4; ++layer) {
    for (Index q = 0; q < qubits; ++q) c.rz(q, qsim::ParamRef{next++});
    for (Index q = 0; q < qubits; ++q) {
      c.z(q);
      c.s(q);
      c.t(q);
    }
    for (Index q = 0; q + 1 < qubits; ++q) c.cz(q, q + 1);
  }
  std::vector<Real> params(c.num_params());
  Rng rng(6);
  rng.fill_uniform(params, -1, 1);
  qsim::StateVector psi(qubits);
  for (Index q = 0; q < qubits; ++q)
    psi.apply_1q(qsim::gate_matrix(qsim::GateKind::kH, {}), q);
  for (auto _ : state) {
    qsim::run_circuit(c, params, psi);
    benchmark::DoNotOptimize(psi.amplitudes_mut().data());
  }
  // Throughput in gate applications per second (each touching O(dim) amps).
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.num_ops()));
  state.counters["gate_ops"] = static_cast<double>(c.num_ops());
}
BENCHMARK(BM_DiagonalHeavyCircuit)->Arg(8)->Arg(12)->Arg(16);

void BM_QuGeoAnsatzForward(benchmark::State& state) {
  const auto blocks = static_cast<std::size_t>(state.range(0));
  const core::QubitLayout layout({8}, 0);
  core::AnsatzConfig cfg;
  cfg.blocks = blocks;
  const qsim::Circuit c = build_qugeo_ansatz(layout, cfg);
  std::vector<Real> params(c.num_params());
  Rng rng(1);
  rng.fill_uniform(params, -1, 1);
  for (auto _ : state) {
    qsim::StateVector psi(8);
    qsim::run_circuit(c, params, psi);
    benchmark::DoNotOptimize(psi.amplitudes().data());
  }
  // Throughput in ansatz gate applications per second.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.num_ops()));
  state.counters["params"] = static_cast<double>(c.num_params());
}
BENCHMARK(BM_QuGeoAnsatzForward)->Arg(4)->Arg(12)->Arg(24);

void BM_AdjointGradient(benchmark::State& state) {
  const auto blocks = static_cast<std::size_t>(state.range(0));
  const core::QubitLayout layout({8}, 0);
  core::AnsatzConfig cfg;
  cfg.blocks = blocks;
  const qsim::Circuit c = build_qugeo_ansatz(layout, cfg);
  std::vector<Real> params(c.num_params());
  Rng rng(2);
  rng.fill_uniform(params, -1, 1);
  std::vector<Real> g(256);
  rng.fill_uniform(g, -1, 1);
  for (auto _ : state) {
    qsim::StateVector psi(8);
    qsim::run_circuit(c, params, psi);
    const auto cot = qsim::cotangent_from_probability_grads(psi, g);
    const auto adj = qsim::adjoint_backward(c, params, std::move(psi), cot);
    benchmark::DoNotOptimize(adj.param_grads.data());
  }
  // One gradient = forward + reversal sweep; count parameters differentiated
  // per second so the rate is comparable across block counts.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.num_params()));
  state.counters["params"] = static_cast<double>(c.num_params());
}
BENCHMARK(BM_AdjointGradient)->Arg(4)->Arg(12)->Arg(24);

void BM_QuBatchForward(benchmark::State& state) {
  // The Sec. 3.3.3 claim in silico: processing 2^N samples in one circuit
  // costs one 2^(8+N)-dim execution instead of 2^N separate 2^8-dim runs.
  const auto batch_log2 = static_cast<Index>(state.range(0));
  const core::QubitLayout layout({8}, batch_log2);
  core::AnsatzConfig cfg;
  const qsim::Circuit c = build_qugeo_ansatz(layout, cfg);
  std::vector<Real> params(c.num_params());
  Rng rng(3);
  rng.fill_uniform(params, -1, 1);

  std::vector<Real> sample(256);
  rng.fill_uniform(sample, -1, 1);
  std::vector<const std::vector<Real>*> batch(layout.batch_size(), &sample);
  const core::StEncoder encoder(layout);

  for (auto _ : state) {
    qsim::StateVector psi = encoder.encode(batch);
    qsim::run_circuit(c, params, psi);
    benchmark::DoNotOptimize(psi.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(layout.batch_size()));
}
BENCHMARK(BM_QuBatchForward)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_StatePrepSynthesis(benchmark::State& state) {
  const auto qubits = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  std::vector<Real> data(std::size_t{1} << qubits);
  rng.fill_uniform(data, -1, 1);
  for (auto _ : state) {
    const qsim::Circuit c = qsim::state_prep_circuit(data);
    benchmark::DoNotOptimize(c.num_ops());
  }
  // Amplitudes synthesized per second.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_StatePrepSynthesis)->Arg(4)->Arg(8)->Arg(10);

void BM_MarginalProbabilities(benchmark::State& state) {
  qsim::StateVector psi(static_cast<Index>(state.range(0)));
  Rng rng(5);
  std::vector<Real> data(psi.dim());
  rng.fill_uniform(data, -1, 1);
  qsim::encode_amplitudes(data, psi);
  const std::vector<Index> qubits = {0, 1, 2, 3, 4, 5};
  for (auto _ : state) {
    auto m = psi.marginal_probabilities(qubits);
    benchmark::DoNotOptimize(m.data());
  }
  // Amplitudes folded into the marginal per second.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(psi.dim()));
}
BENCHMARK(BM_MarginalProbabilities)->Arg(8)->Arg(12)->Arg(16);

}  // namespace

QUGEO_BENCH_MICRO_MAIN()
