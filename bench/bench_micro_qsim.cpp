// Microbenchmarks of the quantum-simulation substrate: gate application,
// full QuGeoVQC ansatz execution, adjoint gradients, encoder synthesis —
// the quantities behind the QuBatch complexity argument (Sec. 3.3.3).
//
// The binary doubles as the CI perf gate for gradient-plan fusion: after
// the benchmark run, main() re-times the frozen-heavy adjoint gradient
// with and without the plan and exits non-zero below 1.3x — the speedup
// the fused training path is built to deliver on frozen-heavy shapes.
#include <benchmark/benchmark.h>

#include "bench_micro_main.h"

#include <chrono>
#include <cstdio>

#include "common/rng.h"
#include "core/ansatz.h"
#include "core/encoder.h"
#include "qsim/encoding.h"
#include "qsim/executor.h"
#include "qsim/gradient_plan.h"
#include "qsim/observables.h"

namespace {

using namespace qugeo;

void BM_Apply1QGate(benchmark::State& state) {
  const auto qubits = static_cast<Index>(state.range(0));
  qsim::StateVector psi(qubits);
  const qsim::Mat2 h = qsim::gate_matrix(qsim::GateKind::kH, {});
  Index q = 0;
  for (auto _ : state) {
    psi.apply_1q(h, q);
    q = (q + 1) % qubits;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(psi.dim()));
}
BENCHMARK(BM_Apply1QGate)->Arg(8)->Arg(10)->Arg(12)->Arg(16)->Arg(20);

void BM_ApplyControlledGate(benchmark::State& state) {
  const auto qubits = static_cast<Index>(state.range(0));
  qsim::StateVector psi(qubits);
  const Real params[] = {0.3, 0.7, -0.4};
  const qsim::Mat2 u = qsim::gate_matrix(qsim::GateKind::kCU3, params);
  for (auto _ : state) psi.apply_controlled_1q(u, 0, qubits - 1);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(psi.dim()));
}
BENCHMARK(BM_ApplyControlledGate)->Arg(8)->Arg(12)->Arg(16);

void BM_DiagonalHeavyCircuit(benchmark::State& state) {
  // Phase-only workload: RZ/Z/S/T layers with a CZ ring — the gate mix the
  // diagonal fast path targets (no amplitude mixing at all).
  const auto qubits = static_cast<Index>(state.range(0));
  qsim::Circuit c(qubits);
  auto p = c.new_params(static_cast<std::uint32_t>(4 * qubits));
  std::uint32_t next = p.id;
  for (int layer = 0; layer < 4; ++layer) {
    for (Index q = 0; q < qubits; ++q) c.rz(q, qsim::ParamRef{next++});
    for (Index q = 0; q < qubits; ++q) {
      c.z(q);
      c.s(q);
      c.t(q);
    }
    for (Index q = 0; q + 1 < qubits; ++q) c.cz(q, q + 1);
  }
  std::vector<Real> params(c.num_params());
  Rng rng(6);
  rng.fill_uniform(params, -1, 1);
  qsim::StateVector psi(qubits);
  for (Index q = 0; q < qubits; ++q)
    psi.apply_1q(qsim::gate_matrix(qsim::GateKind::kH, {}), q);
  for (auto _ : state) {
    qsim::run_circuit(c, params, psi);
    benchmark::DoNotOptimize(psi.amplitudes_mut().data());
  }
  // Throughput in gate applications per second (each touching O(dim) amps).
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.num_ops()));
  state.counters["gate_ops"] = static_cast<double>(c.num_ops());
}
BENCHMARK(BM_DiagonalHeavyCircuit)->Arg(8)->Arg(12)->Arg(16);

void BM_QuGeoAnsatzForward(benchmark::State& state) {
  const auto blocks = static_cast<std::size_t>(state.range(0));
  const core::QubitLayout layout({8}, 0);
  core::AnsatzConfig cfg;
  cfg.blocks = blocks;
  const qsim::Circuit c = build_qugeo_ansatz(layout, cfg);
  std::vector<Real> params(c.num_params());
  Rng rng(1);
  rng.fill_uniform(params, -1, 1);
  for (auto _ : state) {
    qsim::StateVector psi(8);
    qsim::run_circuit(c, params, psi);
    benchmark::DoNotOptimize(psi.amplitudes().data());
  }
  // Throughput in ansatz gate applications per second.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.num_ops()));
  state.counters["params"] = static_cast<double>(c.num_params());
}
BENCHMARK(BM_QuGeoAnsatzForward)->Arg(4)->Arg(12)->Arg(24);

void BM_AdjointGradient(benchmark::State& state) {
  const auto blocks = static_cast<std::size_t>(state.range(0));
  const core::QubitLayout layout({8}, 0);
  core::AnsatzConfig cfg;
  cfg.blocks = blocks;
  const qsim::Circuit c = build_qugeo_ansatz(layout, cfg);
  std::vector<Real> params(c.num_params());
  Rng rng(2);
  rng.fill_uniform(params, -1, 1);
  std::vector<Real> g(256);
  rng.fill_uniform(g, -1, 1);
  for (auto _ : state) {
    qsim::StateVector psi(8);
    qsim::run_circuit(c, params, psi);
    const auto cot = qsim::cotangent_from_probability_grads(psi, g);
    const auto adj = qsim::adjoint_backward(c, params, std::move(psi), cot);
    benchmark::DoNotOptimize(adj.param_grads.data());
  }
  // One gradient = forward + reversal sweep; count parameters differentiated
  // per second so the rate is comparable across block counts.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.num_params()));
  state.counters["params"] = static_cast<double>(c.num_params());
}
BENCHMARK(BM_AdjointGradient)->Arg(4)->Arg(12)->Arg(24);

/// Transfer-learning shape: each block carries the paper's full U3+CU3
/// layer with FROZEN (literal) angles plus one trainable RY — the
/// frozen-heavy regime where GradientPlan's literal-segment fusion pays
/// (the all-trainable ansatz above is plan-invariant by design).
qsim::Circuit frozen_heavy_ansatz(Index qubits, std::size_t blocks,
                                  std::uint64_t seed) {
  Rng rng(seed);
  qsim::Circuit c(qubits);
  const auto p = c.new_params(static_cast<std::uint32_t>(blocks));
  for (std::size_t b = 0; b < blocks; ++b) {
    for (Index q = 0; q < qubits; ++q)
      c.u3(q, rng.uniform(-kPi, kPi), rng.uniform(-kPi, kPi),
           rng.uniform(-kPi, kPi));
    for (Index q = 0; q + 1 < qubits; ++q)
      c.cu3(q, q + 1, rng.uniform(-kPi, kPi), rng.uniform(-kPi, kPi),
            rng.uniform(-kPi, kPi));
    c.ry(0, qsim::ParamRef{p.id + static_cast<std::uint32_t>(b)});
  }
  return c;
}

void BM_AdjointGradientFrozenHeavy(benchmark::State& state) {
  // Arg 0 = verbatim op stream (QUGEO_GRAD_FUSION=off), Arg 1 = the
  // gradient-plan form loss_and_gradient executes by default.
  const bool use_plan = state.range(0) != 0;
  const qsim::Circuit source = frozen_heavy_ansatz(8, 12, 21);
  const qsim::GradientPlan plan = qsim::GradientPlan::build(source);
  const qsim::Circuit& c = use_plan ? plan.execution_form(source) : source;
  std::vector<Real> params(source.num_params());
  Rng rng(22);
  rng.fill_uniform(params, -1, 1);
  std::vector<Real> g(256);
  rng.fill_uniform(g, -1, 1);
  for (auto _ : state) {
    qsim::StateVector psi(8);
    qsim::run_circuit(c, params, psi);
    const auto cot = qsim::cotangent_from_probability_grads(psi, g);
    const auto adj = qsim::adjoint_backward(c, params, std::move(psi), cot);
    benchmark::DoNotOptimize(adj.param_grads.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(source.num_params()));
  state.counters["plan_ops"] = static_cast<double>(c.num_ops());
}
BENCHMARK(BM_AdjointGradientFrozenHeavy)->Arg(0)->Arg(1);

void BM_QuBatchForward(benchmark::State& state) {
  // The Sec. 3.3.3 claim in silico: processing 2^N samples in one circuit
  // costs one 2^(8+N)-dim execution instead of 2^N separate 2^8-dim runs.
  const auto batch_log2 = static_cast<Index>(state.range(0));
  const core::QubitLayout layout({8}, batch_log2);
  core::AnsatzConfig cfg;
  const qsim::Circuit c = build_qugeo_ansatz(layout, cfg);
  std::vector<Real> params(c.num_params());
  Rng rng(3);
  rng.fill_uniform(params, -1, 1);

  std::vector<Real> sample(256);
  rng.fill_uniform(sample, -1, 1);
  std::vector<const std::vector<Real>*> batch(layout.batch_size(), &sample);
  const core::StEncoder encoder(layout);

  for (auto _ : state) {
    qsim::StateVector psi = encoder.encode(batch);
    qsim::run_circuit(c, params, psi);
    benchmark::DoNotOptimize(psi.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(layout.batch_size()));
}
BENCHMARK(BM_QuBatchForward)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_StatePrepSynthesis(benchmark::State& state) {
  const auto qubits = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  std::vector<Real> data(std::size_t{1} << qubits);
  rng.fill_uniform(data, -1, 1);
  for (auto _ : state) {
    const qsim::Circuit c = qsim::state_prep_circuit(data);
    benchmark::DoNotOptimize(c.num_ops());
  }
  // Amplitudes synthesized per second.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_StatePrepSynthesis)->Arg(4)->Arg(8)->Arg(10);

void BM_MarginalProbabilities(benchmark::State& state) {
  qsim::StateVector psi(static_cast<Index>(state.range(0)));
  Rng rng(5);
  std::vector<Real> data(psi.dim());
  rng.fill_uniform(data, -1, 1);
  qsim::encode_amplitudes(data, psi);
  const std::vector<Index> qubits = {0, 1, 2, 3, 4, 5};
  for (auto _ : state) {
    auto m = psi.marginal_probabilities(qubits);
    benchmark::DoNotOptimize(m.data());
  }
  // Amplitudes folded into the marginal per second.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(psi.dim()));
}
BENCHMARK(BM_MarginalProbabilities)->Arg(8)->Arg(12)->Arg(16);

/// CI perf gate: the gradient-plan form of the frozen-heavy adjoint
/// gradient must be >= 1.3x faster than the verbatim op stream. Best-of-R
/// timing of K full gradients each (forward + reverse sweep).
int adjoint_fusion_guard() {
  using clock = std::chrono::steady_clock;
  const qsim::Circuit source = frozen_heavy_ansatz(8, 12, 21);
  const qsim::GradientPlan plan = qsim::GradientPlan::build(source);
  const qsim::Circuit& fused = plan.execution_form(source);
  std::vector<Real> params(source.num_params());
  Rng rng(22);
  rng.fill_uniform(params, -1, 1);
  std::vector<Real> g(256);
  rng.fill_uniform(g, -1, 1);

  constexpr int kReps = 5;
  constexpr int kIters = 60;
  constexpr double kRequiredSpeedup = 1.3;
  const auto best_of = [&](const qsim::Circuit& c) {
    double best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = clock::now();
      for (int it = 0; it < kIters; ++it) {
        qsim::StateVector psi(8);
        qsim::run_circuit(c, params, psi);
        const auto cot = qsim::cotangent_from_probability_grads(psi, g);
        const auto adj = qsim::adjoint_backward(c, params, std::move(psi), cot);
        benchmark::DoNotOptimize(adj.param_grads.data());
      }
      const std::chrono::duration<double, std::milli> dt = clock::now() - t0;
      best = std::min(best, dt.count());
    }
    return best;
  };

  best_of(source);  // warm caches/pages before the measured passes
  const double unfused_ms = best_of(source);
  const double fused_ms = best_of(fused);
  const double speedup = unfused_ms / fused_ms;
  std::printf(
      "adjoint fusion guard: frozen-heavy 8q/12-block gradient %zu -> %zu "
      "ops, unfused %.3f ms, fused %.3f ms (%.2fx, need >= %.1fx)\n",
      source.num_ops(), fused.num_ops(), unfused_ms, fused_ms, speedup,
      kRequiredSpeedup);
  if (speedup < kRequiredSpeedup) {
    std::fprintf(stderr,
                 "adjoint fusion guard FAILED: %.2fx < required %.1fx\n",
                 speedup, kRequiredSpeedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int rc = qugeo::bench::run_micro_benchmarks(argc, argv);
  if (rc != 0) return rc;
  return adjoint_fusion_guard();
}
