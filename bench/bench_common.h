// Shared plumbing for the per-figure/per-table experiment harnesses.
//
// Every harness loads the same cached corpus (built on first use) and the
// training budget from the environment, so `QUGEO_SAMPLES=500 QUGEO_TRAIN=400
// QUGEO_EPOCHS=500 ./bench_fig8_decoders` reproduces the paper-scale run
// recorded in EXPERIMENTS.md while the default stays minutes-fast.
#pragma once

#include <cstdio>
#include <string>

#include "core/experiment.h"
#include "data/cache.h"

namespace qugeo::bench {

struct Setup {
  data::ExperimentData data;
  core::TrainConfig train;
};

inline Setup standard_setup() {
  Setup s{data::load_or_build_experiment_data(data::experiment_config_from_env()),
          {}};
  s.train.epochs = data::epochs_from_env(120);
  s.train.initial_lr = 0.1;
  return s;
}

inline void print_header(const char* title, const char* paper_numbers) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("Paper reference: %s\n", paper_numbers);
  std::printf("================================================================\n");
}

inline void print_run_scale(const Setup& s) {
  const std::size_t total = s.data.dsample.size();
  std::printf("[scale] samples=%zu (train=%zu test=%zu) epochs=%zu "
              "(paper: 500 samples, 400/100, 500 epochs)\n",
              total, s.data.train_count, total - s.data.train_count,
              s.train.epochs);
}

}  // namespace qugeo::bench
