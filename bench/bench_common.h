// Shared plumbing for the per-figure/per-table experiment harnesses.
//
// Every harness loads the same cached corpus (built on first use) and the
// training budget from the environment, so `QUGEO_SAMPLES=500 QUGEO_TRAIN=400
// QUGEO_EPOCHS=500 ./bench_fig8_decoders` reproduces the paper-scale run
// recorded in EXPERIMENTS.md while the default stays minutes-fast.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "core/experiment.h"
#include "data/cache.h"

namespace qugeo::bench {

// ---------------------------------------------------------------------------
// Machine-readable perf trajectory: BENCH_micro.json
// ---------------------------------------------------------------------------
// Collects one line-oriented JSON entry per benchmark and merges them into a
// results file keyed by benchmark name, so successive suites (qsim, fdtd,
// pipeline) and successive PRs can update the same BENCH_micro.json and
// speedups stay diffable. Schema (one entry per line, sorted by name):
//
//   {
//     "schema": "qugeo-bench-micro-v1",
//     "benchmarks": [
//       {"name": "...", "wall_ms": <per-iteration real time>,
//        "cpu_ms": <per-iteration cpu time>, "iterations": N,
//        "items_per_second": <throughput: gate-ops/s for qsim suites,
//                             cell-updates/s for fdtd>},
//       ...
//     ]
//   }
class JsonReport {
 public:
  void add(const std::string& name, double wall_ms, double cpu_ms,
           std::int64_t iterations, double items_per_second) {
    std::ostringstream line;
    line.precision(9);
    line << "{\"name\": \"" << name << "\", \"wall_ms\": " << wall_ms
         << ", \"cpu_ms\": " << cpu_ms << ", \"iterations\": " << iterations
         << ", \"items_per_second\": " << items_per_second << "}";
    entries_[name] = line.str();
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Merge into `path`: entries already present keep their line unless this
  /// run re-measured the same benchmark name. Only files produced by this
  /// writer are understood (one entry per line).
  void write_merged(const std::string& path) const {
    std::map<std::string, std::string> merged = read_existing(path);
    for (const auto& [name, line] : entries_) merged[name] = line;
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "JsonReport: cannot write %s\n", path.c_str());
      return;
    }
    out << "{\n  \"schema\": \"qugeo-bench-micro-v1\",\n  \"benchmarks\": [\n";
    std::size_t i = 0;
    for (const auto& [name, line] : merged)
      out << "    " << line << (++i == merged.size() ? "\n" : ",\n");
    out << "  ]\n}\n";
  }

 private:
  static std::map<std::string, std::string> read_existing(const std::string& path) {
    std::map<std::string, std::string> out;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      const auto start = line.find("{\"name\": \"");
      if (start == std::string::npos) continue;
      const auto name_begin = start + 10;
      const auto name_end = line.find('"', name_begin);
      if (name_end == std::string::npos) continue;
      std::string entry = line.substr(start);
      if (!entry.empty() && entry.back() == ',') entry.pop_back();
      out[line.substr(name_begin, name_end - name_begin)] = std::move(entry);
    }
    return out;
  }

  std::map<std::string, std::string> entries_;
};

struct Setup {
  data::ExperimentData data;
  core::TrainConfig train;
};

inline Setup standard_setup() {
  Setup s{data::load_or_build_experiment_data(data::experiment_config_from_env()),
          {}};
  s.train.epochs = data::epochs_from_env(120);
  s.train.initial_lr = 0.1;
  return s;
}

inline void print_header(const char* title, const char* paper_numbers) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("Paper reference: %s\n", paper_numbers);
  std::printf("================================================================\n");
}

inline void print_run_scale(const Setup& s) {
  const std::size_t total = s.data.dsample.size();
  std::printf("[scale] samples=%zu (train=%zu test=%zu) epochs=%zu "
              "(paper: 500 samples, 400/100, 500 epochs)\n",
              total, s.data.train_count, total - s.data.train_count,
              s.train.epochs);
}

}  // namespace qugeo::bench
