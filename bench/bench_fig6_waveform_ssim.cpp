// Figure 6: visualization metrics for the scaled seismic waveforms.
//
// Panel (a) — classical scaled data, SSIM against the physics-guided
// Q-D-FW reference: paper reports D-Sample 0.0597 and Q-D-CNN 0.9255.
// Panel (b) — the same data after quantum (L2) normalization inside the
// encoder: paper reports 0.5253 and 0.9989.
//
// This bench regenerates both rows from freshly modelled samples.
#include <cmath>

#include "bench_common.h"
#include "common/math_utils.h"
#include "core/encoder.h"
#include "metrics/image_metrics.h"

namespace {

using namespace qugeo;

/// SSIM between two waveforms viewed as (nsrc*nt) x nrec images.
Real waveform_ssim(const std::vector<Real>& a, const std::vector<Real>& b,
                   std::size_t rows, std::size_t cols) {
  metrics::SsimOptions opts;
  return metrics::ssim(a, b, rows, cols, opts);
}

/// Scale a waveform to unit max-abs so SSIM compares shapes, not gains
/// (the three scalers produce different absolute amplitudes).
std::vector<Real> unit_gain(std::vector<Real> w) {
  Real peak = 0;
  for (Real v : w) peak = std::max(peak, std::abs(v));
  if (peak > 0)
    for (Real& v : w) v /= peak;
  return w;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 6: waveform fidelity of data scaling (SSIM vs Q-D-FW reference)",
      "(a) D-Sample 0.0597, Q-D-CNN 0.9255; (b) after quantum normalization "
      "0.5253, 0.9989");
  bench::Setup setup = bench::standard_setup();
  const auto split = setup.data.split();

  const data::ScaleTarget target;
  const core::QubitLayout layout({8}, 0);
  const core::StEncoder encoder(layout);

  // Average over the test split (the paper shows one representative sample).
  Real ssim_ds = 0, ssim_cnn = 0, ssim_ds_norm = 0, ssim_cnn_norm = 0;
  for (std::size_t idx : split.test) {
    const auto& ref = setup.data.qdfw.samples[idx].waveform;
    const auto& ds = setup.data.dsample.samples[idx].waveform;
    const auto& cnn = setup.data.qdcnn.samples[idx].waveform;
    const std::size_t rows = target.nsrc * target.nt, cols = target.nrec;

    ssim_ds += waveform_ssim(unit_gain(ref), unit_gain(ds), rows, cols);
    ssim_cnn += waveform_ssim(unit_gain(ref), unit_gain(cnn), rows, cols);

    // Panel (b): what the quantum encoder actually ingests.
    const std::vector<Real>* pref = &ref;
    const std::vector<Real>* pds = &ds;
    const std::vector<Real>* pcnn = &cnn;
    const auto nref = encoder.normalized_view({&pref, 1});
    const auto nds = encoder.normalized_view({&pds, 1});
    const auto ncnn = encoder.normalized_view({&pcnn, 1});
    ssim_ds_norm += waveform_ssim(nref, nds, rows, cols);
    ssim_cnn_norm += waveform_ssim(nref, ncnn, rows, cols);
  }
  const Real n = static_cast<Real>(split.test.size());

  std::printf("\n%-28s | %-10s | %-10s\n", "Waveform (vs Q-D-FW ref)",
              "D-Sample", "Q-D-CNN");
  std::printf("-----------------------------+------------+------------\n");
  std::printf("%-28s | %10.4f | %10.4f   (paper: 0.0597 / 0.9255)\n",
              "(a) scaled classical data", ssim_ds / n, ssim_cnn / n);
  std::printf("%-28s | %10.4f | %10.4f   (paper: 0.5253 / 0.9989)\n",
              "(b) quantum-normalized", ssim_ds_norm / n, ssim_cnn_norm / n);
  std::printf("\nExpected shape: D-Sample is incoherent with the physical "
              "reference; the CNN compression preserves it almost exactly.\n");
  return 0;
}
