// Ablation: ansatz depth ("# layers" hyperparameter of Sec. 3.2.2) —
// blocks vs accuracy, locating the paper's choice of 12 blocks (576
// parameters) on the depth/quality curve.
#include "bench_common.h"

int main() {
  using namespace qugeo;
  bench::print_header(
      "Ablation: ansatz depth (U3+CU3 blocks vs accuracy)",
      "design-space study behind Sec. 3.2.2 '# layers' (paper uses 12)");
  bench::Setup setup = bench::standard_setup();
  setup.train.epochs = std::max<std::size_t>(20, setup.train.epochs / 2);
  bench::print_run_scale(setup);

  std::printf("\n%-7s | %-7s | %-7s | %-8s | %-10s\n", "Blocks", "Params",
              "Depth", "SSIM", "MSE");
  std::printf("--------+---------+---------+----------+-----------\n");
  for (std::size_t blocks : {2u, 4u, 8u, 12u, 16u}) {
    core::ExperimentSpec spec;
    spec.dataset = "Q-D-FW";
    spec.decoder = core::DecoderKind::kLayer;
    spec.blocks = blocks;
    const auto r = run_vqc_experiment(setup.data, spec, setup.train);

    const core::QubitLayout layout({8}, 0);
    core::AnsatzConfig acfg;
    acfg.blocks = blocks;
    const auto circuit = build_qugeo_ansatz(layout, acfg);
    std::printf("%-7zu | %7zu | %7zu | %8.4f | %10.3e\n", blocks,
                r.param_count, circuit.depth(), r.train.final_ssim,
                r.train.final_mse);
  }
  std::printf("\nExpected shape: quality saturates with depth; very shallow "
              "ansaetze underfit.\n");
  return 0;
}
