// Microbenchmarks of the explicit SIMD layer and the batched (SoA)
// multi-state executor: the scalar vs AVX2 single-state kernels, the
// order-8 FDTD sweep under both dispatch levels, and the batched 1q sweep
// against the equivalent loop over independent statevectors. Merges into
// BENCH_micro.json like every micro suite.
//
// The binary doubles as the CI perf gate (mirroring bench_micro_fusion's
// fusion guard): after the benchmark run, main() re-times the hot kernels
// directly and exits non-zero on AVX2 hardware unless, against the
// pre-SIMD scalar single-state baselines,
//   - the dense 2q AVX2 kernel is >= 1.5x the scalar kernel, and
//   - the batched 1q sweep at 8 lanes is >= 2x the looped scalar
//     single-state form (the path those states took before batching).
// On machines without AVX2+FMA the guard prints a skip notice and passes.
#include <benchmark/benchmark.h>

#include "bench_micro_main.h"

#include <chrono>
#include <cstdio>

#include "common/cpu_features.h"
#include "common/rng.h"
#include "qsim/batched_statevector.h"
#include "qsim/gate.h"
#include "qsim/statevector.h"

namespace {

using namespace qugeo;

/// Mixing 1q matrix (all four entries nonzero) so no fast path hides the
/// kernel under test.
qsim::Mat2 test_u3() { return qsim::u3_matrix(0.7, -0.3, 1.1); }

/// Dense 4x4 with all sixteen entries nonzero: U3 (x) U3 composed with a
/// SWAP-like mixing — built directly so the benchmark needs no fusion pass.
qsim::Mat4 test_dense4() {
  const qsim::Mat2 a = qsim::u3_matrix(0.4, -0.8, 1.1);
  const qsim::Mat2 b = qsim::u3_matrix(-0.9, 0.3, 0.5);
  qsim::Mat4 m{};
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c)
      m.m[r * 4 + c] = a(r / 2, c % 2) * b(r % 2, c / 2);
  return m;
}

void bench_apply_1q(benchmark::State& state, simd::SimdMode mode) {
  if (mode == simd::SimdMode::kAvx2 && !simd::cpu_supports_avx2()) {
    state.SkipWithError("AVX2+FMA not supported on this CPU");
    return;
  }
  const simd::ScopedSimdMode scoped(mode);
  const auto qubits = static_cast<Index>(state.range(0));
  qsim::StateVector psi(qubits);
  const qsim::Mat2 u = test_u3();
  Index q = 0;
  for (auto _ : state) {
    psi.apply_1q(u, q);
    q = (q + 1) % qubits;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(psi.dim()));
}

void BM_SimdApply1QScalar(benchmark::State& state) {
  bench_apply_1q(state, simd::SimdMode::kScalar);
}
BENCHMARK(BM_SimdApply1QScalar)->Arg(12)->Arg(16);

void BM_SimdApply1QAvx2(benchmark::State& state) {
  bench_apply_1q(state, simd::SimdMode::kAvx2);
}
BENCHMARK(BM_SimdApply1QAvx2)->Arg(12)->Arg(16);

void bench_apply_matrix2q(benchmark::State& state, simd::SimdMode mode) {
  if (mode == simd::SimdMode::kAvx2 && !simd::cpu_supports_avx2()) {
    state.SkipWithError("AVX2+FMA not supported on this CPU");
    return;
  }
  const simd::ScopedSimdMode scoped(mode);
  const auto qubits = static_cast<Index>(state.range(0));
  qsim::StateVector psi(qubits);
  const qsim::Mat4 u = test_dense4();
  Index q = 0;
  for (auto _ : state) {
    psi.apply_matrix2q(u, q, (q + 1) % qubits);
    q = (q + 1) % qubits;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(psi.dim()));
}

void BM_SimdApplyMatrix2QScalar(benchmark::State& state) {
  bench_apply_matrix2q(state, simd::SimdMode::kScalar);
}
BENCHMARK(BM_SimdApplyMatrix2QScalar)->Arg(12)->Arg(16);

void BM_SimdApplyMatrix2QAvx2(benchmark::State& state) {
  bench_apply_matrix2q(state, simd::SimdMode::kAvx2);
}
BENCHMARK(BM_SimdApplyMatrix2QAvx2)->Arg(12)->Arg(16);

/// The batched SoA sweep: one dispatch moves all lanes of the group.
void BM_BatchedApply1Q(benchmark::State& state) {
  const Index qubits = 8;
  const auto lanes = static_cast<std::size_t>(state.range(0));
  qsim::BatchedStateVector batch(qubits, lanes);
  const qsim::Mat2 u = test_u3();
  Index q = 0;
  for (auto _ : state) {
    batch.apply_1q(u, q);
    q = (q + 1) % qubits;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.dim() * lanes));
}
BENCHMARK(BM_BatchedApply1Q)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

/// The loop the batched sweep replaces: the same gate applied to the same
/// number of independent single statevectors.
void BM_LoopedApply1Q(benchmark::State& state) {
  const Index qubits = 8;
  const auto lanes = static_cast<std::size_t>(state.range(0));
  std::vector<qsim::StateVector> states;
  for (std::size_t l = 0; l < lanes; ++l) states.emplace_back(qubits);
  const qsim::Mat2 u = test_u3();
  Index q = 0;
  for (auto _ : state) {
    for (auto& psi : states) psi.apply_1q(u, q);
    q = (q + 1) % qubits;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(states[0].dim() * lanes));
}
BENCHMARK(BM_LoopedApply1Q)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

/// CI perf gate for the SIMD layer. Best-of-R timing of K kernel sweeps,
/// the same shape as bench_micro_fusion's fusion_speedup_guard.
int simd_speedup_guard() {
  if (!simd::cpu_supports_avx2()) {
    std::printf(
        "simd guard: AVX2+FMA unavailable on this CPU; skipping the "
        "speedup gate\n");
    return 0;
  }
  using clock = std::chrono::steady_clock;
  constexpr int kReps = 5;
  const auto best_of = [&](auto&& body) {
    double best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = clock::now();
      body();
      const std::chrono::duration<double, std::milli> dt = clock::now() - t0;
      best = std::min(best, dt.count());
    }
    return best;
  };

  // Gate 1: dense 2q AVX2 >= 1.5x scalar on a 14-qubit register.
  const qsim::Mat4 u4 = test_dense4();
  qsim::StateVector psi(14);
  constexpr int kIters2Q = 200;
  const auto sweep_2q = [&] {
    Index q = 0;
    for (int it = 0; it < kIters2Q; ++it) {
      psi.apply_matrix2q(u4, q, (q + 1) % 14);
      q = (q + 1) % 14;
    }
    benchmark::DoNotOptimize(psi.amplitudes().data());
  };
  double scalar_2q_ms = 0;
  double avx2_2q_ms = 0;
  {
    const simd::ScopedSimdMode scoped(simd::SimdMode::kScalar);
    best_of(sweep_2q);  // warm caches/pages before the measured passes
    scalar_2q_ms = best_of(sweep_2q);
  }
  {
    const simd::ScopedSimdMode scoped(simd::SimdMode::kAvx2);
    best_of(sweep_2q);
    avx2_2q_ms = best_of(sweep_2q);
  }
  const double speedup_2q = scalar_2q_ms / avx2_2q_ms;
  std::printf(
      "simd guard: dense 2q on 14 qubits, scalar %.3f ms, avx2 %.3f ms "
      "(%.2fx, need >= 1.50x)\n",
      scalar_2q_ms, avx2_2q_ms, speedup_2q);

  // Gate 2: batched 1q at 8 lanes >= 2x the looped single-state form.
  const qsim::Mat2 u2 = test_u3();
  constexpr Index kQubits = 8;
  constexpr std::size_t kLanes = 8;
  constexpr int kIters1Q = 4000;
  qsim::BatchedStateVector batch(kQubits, kLanes);
  std::vector<qsim::StateVector> states;
  for (std::size_t l = 0; l < kLanes; ++l) states.emplace_back(kQubits);
  const auto sweep_batched = [&] {
    Index q = 0;
    for (int it = 0; it < kIters1Q; ++it) {
      batch.apply_1q(u2, q);
      q = (q + 1) % kQubits;
    }
    benchmark::DoNotOptimize(batch.re_data());
  };
  const auto sweep_looped = [&] {
    Index q = 0;
    for (int it = 0; it < kIters1Q; ++it) {
      for (auto& s : states) s.apply_1q(u2, q);
      q = (q + 1) % kQubits;
    }
    benchmark::DoNotOptimize(states[0].amplitudes().data());
  };
  // Baseline = the pre-SIMD execution of the same 8 states: one scalar
  // single-state sweep per lane. The batched sweep runs under the default
  // (AVX2) dispatch — the combined SIMD + SoA win is what the gate pins.
  double looped_ms = 0;
  {
    const simd::ScopedSimdMode scoped(simd::SimdMode::kScalar);
    best_of(sweep_looped);
    looped_ms = best_of(sweep_looped);
  }
  best_of(sweep_batched);
  const double batched_ms = best_of(sweep_batched);
  const double speedup_batched = looped_ms / batched_ms;
  std::printf(
      "simd guard: 1q at batch %zu on %zu qubits, looped scalar %.3f ms, "
      "batched %.3f ms (%.2fx, need >= 2.00x)\n",
      kLanes, static_cast<std::size_t>(kQubits), looped_ms, batched_ms,
      speedup_batched);

  int rc = 0;
  if (speedup_2q < 1.5) {
    std::fprintf(stderr,
                 "simd guard FAILED: dense 2q avx2 speedup %.2fx < 1.50x\n",
                 speedup_2q);
    rc = 1;
  }
  if (speedup_batched < 2.0) {
    std::fprintf(stderr,
                 "simd guard FAILED: batched 1q speedup %.2fx < 2.00x\n",
                 speedup_batched);
    rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const int rc = qugeo::bench::run_micro_benchmarks(argc, argv);
  if (rc != 0) return rc;
  return simd_speedup_guard();
}
