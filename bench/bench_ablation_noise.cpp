// Ablation: NISQ noise robustness. The paper targets near-term noisy
// devices but evaluates noiselessly; this extension sweeps hardware-
// realistic NoiseModel channels over the trained Q-M-LY model and reports
// SSIM degradation.
//
// Every sweep runs end-to-end through QuGeoModel via ExecutionConfig
// {backend, noise, shots, trajectories, seed} alone: the same trained
// model is read out on the exact density-matrix backend and on the
// trajectory backend (cross-validating the sampled estimator against the
// exact channel), then once more under a finite shot budget.
#include "bench_common.h"
#include "qsim/backend.h"

int main() {
  using namespace qugeo;
  bench::print_header(
      "Ablation: noise-channel robustness of trained Q-M-LY",
      "extension — the paper's NISQ motivation, evaluated explicitly");
  bench::Setup setup = bench::standard_setup();
  setup.train.epochs = std::max<std::size_t>(20, setup.train.epochs / 2);
  bench::print_run_scale(setup);

  // Train the headline model noiselessly (as the paper does).
  const auto& ds = setup.data.qdfw;
  const auto split = setup.data.split();
  core::ModelConfig mc;
  mc.decoder = core::DecoderKind::kLayer;
  Rng init(42);
  core::QuGeoModel model(mc, init);
  (void)train_model(model, ds, split, setup.train);

  const auto eval_with = [&](const qsim::ExecutionConfig& exec) {
    model.set_execution_config(exec);
    return evaluate_model(model, ds, split.test);
  };

  std::printf("\n%-12s | %-16s | %-8s | %-10s\n", "depol. p", "backend", "SSIM",
              "MSE");
  std::printf("-------------+------------------+----------+-----------\n");
  for (Real p : {0.0, 0.001, 0.005, 0.02, 0.05}) {
    for (const qsim::BackendKind kind :
         {qsim::BackendKind::kDensityMatrix, qsim::BackendKind::kTrajectory}) {
      qsim::ExecutionConfig exec;
      exec.backend = kind;
      exec.noise.gate_error_prob = p;
      exec.trajectories = p == 0.0 ? 1 : 48;
      exec.seed = 2024;
      const core::EvalMetrics ev = eval_with(exec);
      std::printf("%-12g | %-16s | %8.4f | %10.3e\n", p,
                  std::string(qsim::backend_name(kind)).c_str(), ev.ssim, ev.mse);
    }
  }

  // Hardware-realistic channel kinds at a fixed strength, exact vs sampled.
  std::printf("\n%-23s | %-16s | %-8s | %-10s\n", "channel (p=0.02)", "backend",
              "SSIM", "MSE");
  std::printf("------------------------+------------------+----------+-----------\n");
  for (const qsim::NoiseChannel ch :
       {qsim::NoiseChannel::kDepolarizing, qsim::NoiseChannel::kAmplitudeDamping,
        qsim::NoiseChannel::kPhaseDamping}) {
    for (const qsim::BackendKind kind :
         {qsim::BackendKind::kDensityMatrix, qsim::BackendKind::kTrajectory}) {
      qsim::ExecutionConfig exec;
      exec.backend = kind;
      exec.noise.gate_error_prob = 0.02;
      exec.noise.channel = ch;
      exec.trajectories = 48;
      exec.seed = 2024;
      const core::EvalMetrics ev = eval_with(exec);
      std::printf("%-23s | %-16s | %8.4f | %10.3e\n",
                  std::string(qsim::noise_channel_name(ch)).c_str(),
                  std::string(qsim::backend_name(kind)).c_str(), ev.ssim,
                  ev.mse);
    }
  }
  {
    // Readout bit-flip error alone (exact channel), then the full
    // deployment stack: amplitude damping + readout error + 4096 shots.
    qsim::ExecutionConfig exec;
    exec.backend = qsim::BackendKind::kDensityMatrix;
    exec.noise.readout_error = 0.02;
    exec.seed = 2024;
    const core::EvalMetrics ro = eval_with(exec);
    std::printf("%-23s | %-16s | %8.4f | %10.3e\n", "readout e=0.02",
                "density", ro.ssim, ro.mse);

    exec.noise.gate_error_prob = 0.02;
    exec.noise.channel = qsim::NoiseChannel::kAmplitudeDamping;
    exec.shots = 4096;
    const core::EvalMetrics full = eval_with(exec);
    std::printf("%-23s | %-16s | %8.4f | %10.3e\n", "amp+readout, 4096 shots",
                "shot(density)", full.ssim, full.mse);
  }
  std::printf(
      "\nExpected shape: graceful SSIM decay with noise, with the trajectory"
      "\nrows tracking the exact density-matrix rows within sampling error;"
      "\nthe 576-parameter circuit stays usable at realistic error rates.\n");
  return 0;
}
