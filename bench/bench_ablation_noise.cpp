// Ablation: NISQ noise robustness. The paper targets near-term noisy
// devices but evaluates noiselessly; this extension sweeps a depolarizing
// probability over the trained Q-M-LY model and reports SSIM degradation.
//
// The sweep runs end-to-end through QuGeoModel via ExecutionConfig alone:
// the same trained model is read out on the exact density-matrix backend
// and on the trajectory backend, cross-validating the sampled estimator
// against the exact channel (and quantifying the trajectory budget).
#include "bench_common.h"
#include "qsim/backend.h"

int main() {
  using namespace qugeo;
  bench::print_header(
      "Ablation: depolarizing-noise robustness of trained Q-M-LY",
      "extension — the paper's NISQ motivation, evaluated explicitly");
  bench::Setup setup = bench::standard_setup();
  setup.train.epochs = std::max<std::size_t>(20, setup.train.epochs / 2);
  bench::print_run_scale(setup);

  // Train the headline model noiselessly (as the paper does).
  const auto& ds = setup.data.qdfw;
  const auto split = setup.data.split();
  core::ModelConfig mc;
  mc.decoder = core::DecoderKind::kLayer;
  Rng init(42);
  core::QuGeoModel model(mc, init);
  (void)train_model(model, ds, split, setup.train);

  std::printf("\n%-12s | %-16s | %-8s | %-10s\n", "depol. p", "backend", "SSIM",
              "MSE");
  std::printf("-------------+------------------+----------+-----------\n");
  for (Real p : {0.0, 0.001, 0.005, 0.02, 0.05}) {
    for (const qsim::BackendKind kind :
         {qsim::BackendKind::kDensityMatrix, qsim::BackendKind::kTrajectory}) {
      qsim::ExecutionConfig exec;
      exec.backend = kind;
      exec.noise.depolarizing_prob = p;
      exec.trajectories = p == 0.0 ? 1 : 48;
      exec.seed = 2024;
      model.set_execution_config(exec);
      const core::EvalMetrics ev = evaluate_model(model, ds, split.test);
      std::printf("%-12g | %-16s | %8.4f | %10.3e\n", p,
                  std::string(qsim::backend_name(kind)).c_str(), ev.ssim, ev.mse);
    }
  }
  std::printf(
      "\nExpected shape: graceful SSIM decay with noise, with the trajectory"
      "\nrows tracking the exact density-matrix rows within sampling error;"
      "\nthe 576-parameter circuit stays usable at realistic error rates.\n");
  return 0;
}
