// Ablation: NISQ noise robustness. The paper targets near-term noisy
// devices but evaluates noiselessly; this extension sweeps a depolarizing
// probability over the trained Q-M-LY model and reports SSIM degradation
// (trajectory-averaged readout).
#include "bench_common.h"
#include "core/encoder.h"
#include "metrics/image_metrics.h"
#include "qsim/noise.h"

int main() {
  using namespace qugeo;
  bench::print_header(
      "Ablation: depolarizing-noise robustness of trained Q-M-LY",
      "extension — the paper's NISQ motivation, evaluated explicitly");
  bench::Setup setup = bench::standard_setup();
  setup.train.epochs = std::max<std::size_t>(20, setup.train.epochs / 2);
  bench::print_run_scale(setup);

  // Train the headline model noiselessly (as the paper does).
  const auto& ds = setup.data.qdfw;
  const auto split = setup.data.split();
  core::ModelConfig mc;
  mc.decoder = core::DecoderKind::kLayer;
  Rng init(42);
  core::QuGeoModel model(mc, init);
  (void)train_model(model, ds, split, setup.train);

  const core::QubitLayout& layout = model.layout();
  const core::StEncoder encoder(layout);
  const auto params = model.parameters();
  const std::vector<Index> row_qubits = layout.data_qubits();

  std::printf("\n%-12s | %-8s | %-10s\n", "depol. p", "SSIM", "MSE");
  std::printf("-------------+----------+-----------\n");
  metrics::SsimOptions ssim_opts;
  ssim_opts.data_range = 1.0;
  Rng noise_rng(2024);
  for (Real p : {0.0, 0.001, 0.005, 0.02, 0.05}) {
    const std::size_t trajectories = p == 0.0 ? 1 : 48;
    Real ssim_sum = 0, mse_sum = 0;
    for (std::size_t idx : split.test) {
      const auto& sample = ds.samples[idx];
      const qsim::StateVector psi_in = encoder.encode_single(sample.waveform);
      const auto z = qsim::noisy_expect_z(model.ansatz(), params, psi_in,
                                          row_qubits, qsim::NoiseModel{p},
                                          noise_rng, trajectories);
      std::vector<Real> pred(64);
      for (std::size_t i = 0; i < 8; ++i)
        for (std::size_t j = 0; j < 8; ++j)
          pred[i * 8 + j] = (1.0 + z[i]) / 2.0;
      ssim_sum += metrics::ssim(pred, sample.velocity, 8, 8, ssim_opts);
      mse_sum += metrics::mse(pred, sample.velocity);
    }
    const Real n = static_cast<Real>(split.test.size());
    std::printf("%-12g | %8.4f | %10.3e\n", p, ssim_sum / n, mse_sum / n);
  }
  std::printf("\nExpected shape: graceful SSIM decay with noise; the 576-"
              "parameter circuit stays usable at realistic error rates.\n");
  return 0;
}
