// Table 2: quantum vs classical learning at matched parameter budgets.
//
// Paper (SSIM / MSE on Q-D-FW and Q-D-CNN):
//   CNN-PX (634 par)  0.870 / 4.34e-4   and 0.87 / 4.38e-4
//   CNN-LY (616 par)  0.871 / 4.36e-4   and 0.87 / 4.36e-4
//   Q-M-PX (576 par)  0.859 / 4.61e-4   and 0.86 / 4.62e-4
//   Q-M-LY (576 par)  0.893 / 3.48e-4   and 0.91 / 3.28e-4
// Q-M-LY beats both classical baselines: +19.84% / +25.17% MSE vs CNN-PX.
#include "bench_common.h"

int main() {
  using namespace qugeo;
  bench::print_header(
      "Table 2: quantum vs classical learning at equal parameter budget",
      "Q-M-LY outperforms CNN-PX/CNN-LY: MSE +19.84% (Q-D-FW) and +25.17% "
      "(Q-D-CNN)");
  bench::Setup setup = bench::standard_setup();
  bench::print_run_scale(setup);

  struct ModelRow {
    std::string name;
    std::size_t params = 0;
    Real ssim[2] = {0, 0};
    Real mse[2] = {0, 0};
  };
  std::vector<ModelRow> rows;
  const char* datasets[] = {"Q-D-FW", "Q-D-CNN"};

  // The classical nets need a smaller Adam step than the VQC's lr 0.1 (at
  // 0.1 the sigmoid heads saturate and training collapses to a constant);
  // epochs and schedule are kept identical.
  core::TrainConfig cnn_train = setup.train;
  cnn_train.initial_lr = 0.01;

  for (const auto decoder :
       {core::DecoderKind::kPixel, core::DecoderKind::kLayer}) {
    ModelRow row;
    for (int d = 0; d < 2; ++d) {
      const auto r =
          run_classical_experiment(setup.data, datasets[d], decoder, cnn_train);
      row.name = r.model_name;
      row.params = r.param_count;
      row.ssim[d] = r.train.final_ssim;
      row.mse[d] = r.train.final_mse;
    }
    rows.push_back(row);
  }
  for (const auto decoder :
       {core::DecoderKind::kPixel, core::DecoderKind::kLayer}) {
    ModelRow row;
    for (int d = 0; d < 2; ++d) {
      core::ExperimentSpec spec;
      spec.dataset = datasets[d];
      spec.decoder = decoder;
      const auto r = run_vqc_experiment(setup.data, spec, setup.train);
      row.name = r.model_name;
      row.params = r.param_count;
      row.ssim[d] = r.train.final_ssim;
      row.mse[d] = r.train.final_mse;
    }
    rows.push_back(row);
  }
  {
    // Unconstrained InversionNet-lite reference (extension; not in the
    // paper's table — bounds what classical learning gets from this data).
    ModelRow row;
    core::TrainConfig inet_train = setup.train;
    inet_train.initial_lr = 0.003;  // ~25k parameters need a smaller step
    for (int d = 0; d < 2; ++d) {
      const auto r = run_classical_experiment(setup.data, datasets[d],
                                              core::DecoderKind::kPixel,
                                              inet_train, 42, true);
      row.name = r.model_name;
      row.params = r.param_count;
      row.ssim[d] = r.train.final_ssim;
      row.mse[d] = r.train.final_mse;
    }
    rows.push_back(row);
  }

  const ModelRow& bl = rows[0];  // CNN-PX is the paper's baseline
  std::printf("\n%-8s | %-5s | %-8s %-10s %-8s | %-8s %-10s %-8s\n", "Model",
              "Par.", "FW SSIM", "FW MSE", "dMSE%%", "CNN SSIM", "CNN MSE",
              "dMSE%%");
  std::printf("---------+-------+------------------------------+------------------------------\n");
  for (const ModelRow& r : rows) {
    std::printf("%-8s | %5zu |", r.name.c_str(), r.params);
    for (int d = 0; d < 2; ++d) {
      const Real dmse = 100.0 * (bl.mse[d] - r.mse[d]) / bl.mse[d];
      std::printf(" %8.4f %10.3e %+7.2f%% %s", r.ssim[d], r.mse[d], dmse,
                  d == 0 ? "|" : "");
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: Q-M-LY decisively beats Q-M-PX; against the "
              "parameter-matched CNNs the ordering is budget-sensitive — at "
              "short budgets the CNNs lead, at 200+ epochs Q-M-LY overtakes "
              "as the CNNs overfit (see EXPERIMENTS.md).\n");
  return 0;
}
