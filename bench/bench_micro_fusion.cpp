// Microbenchmarks of two-qubit run fusion and the compiled-circuit cache:
// the frozen (literal-angle) U3+CU3 paper ansatz executed with and without
// canonicalization, the dense 4x4 kernel itself, and the cache hit path.
// Merges into BENCH_micro.json like every micro suite.
//
// The binary doubles as the CI perf gate: after the benchmark run, main()
// re-times the fused vs unfused ansatz forward directly and exits non-zero
// if fusion made it SLOWER — fused execution must never be a pessimization.
#include <benchmark/benchmark.h>

#include "bench_micro_main.h"

#include <chrono>
#include <cstdio>

#include "common/rng.h"
#include "core/ansatz.h"
#include "core/layout.h"
#include "qsim/backend.h"
#include "qsim/compile_cache.h"
#include "qsim/executor.h"
#include "qsim/optimizer.h"

namespace {

using namespace qugeo;

/// The paper's U3+CU3 ansatz with trained angles frozen to literals — the
/// deployed-inference form two-qubit fusion targets (the trainable original
/// is fusion-invariant by design).
qsim::Circuit frozen_ansatz(Index qubits, std::size_t blocks,
                            std::uint64_t seed) {
  const core::QubitLayout layout({qubits}, 0);
  core::AnsatzConfig cfg;
  cfg.blocks = blocks;
  const qsim::Circuit c = build_qugeo_ansatz(layout, cfg);
  std::vector<Real> params(c.num_params());
  Rng rng(seed);
  rng.fill_uniform(params, -kPi, kPi);
  return qsim::bind_parameters(c, params);
}

void run_forward_bench(benchmark::State& state, const qsim::Circuit& c,
                       Index qubits) {
  for (auto _ : state) {
    qsim::StateVector psi(qubits);
    qsim::run_circuit(c, {}, psi);
    benchmark::DoNotOptimize(psi.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.num_ops()));
  state.counters["gate_ops"] = static_cast<double>(c.num_ops());
}

void BM_FrozenAnsatzForwardUnfused(benchmark::State& state) {
  const auto blocks = static_cast<std::size_t>(state.range(0));
  const qsim::Circuit c = frozen_ansatz(8, blocks, 11);
  run_forward_bench(state, c, 8);
}
BENCHMARK(BM_FrozenAnsatzForwardUnfused)->Arg(4)->Arg(12)->Arg(24);

void BM_FrozenAnsatzForwardFused(benchmark::State& state) {
  const auto blocks = static_cast<std::size_t>(state.range(0));
  const qsim::Circuit c =
      qsim::canonicalize_for_backend(frozen_ansatz(8, blocks, 11));
  run_forward_bench(state, c, 8);
}
BENCHMARK(BM_FrozenAnsatzForwardFused)->Arg(4)->Arg(12)->Arg(24);

void BM_ApplyMatrix2Q(benchmark::State& state) {
  // The dense 4x4 kernel in isolation, swept across the register (the
  // SWAP in the source run forces the dense emission path).
  const auto qubits = static_cast<Index>(state.range(0));
  qsim::Circuit c(2);
  c.h(0);
  c.ry(1, 0.6);
  c.cu3(0, 1, 0.4, -0.8, 1.1);
  c.swap(0, 1);
  c.cx(0, 1);
  const qsim::Circuit fused = qsim::canonicalize_for_backend(c);
  const qsim::Mat4 u = fused.matrices()[0];
  qsim::StateVector psi(qubits);
  Index q = 0;
  for (auto _ : state) {
    psi.apply_matrix2q(u, q, (q + 1) % qubits);
    q = (q + 1) % qubits;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(psi.dim()));
}
BENCHMARK(BM_ApplyMatrix2Q)->Arg(8)->Arg(12)->Arg(16);

void BM_ApplyBlockDiag2Q(benchmark::State& state) {
  // The dual half-space kernel behind kFusedCtl2Q — the form CU3-style
  // runs fuse into.
  const auto qubits = static_cast<Index>(state.range(0));
  const Real p0[] = {0.4, -0.8, 1.1};
  const Real p1[] = {-0.9, 0.3, 0.5};
  const qsim::Mat2 u0 = qsim::u3_matrix(p0[0], p0[1], p0[2]);
  const qsim::Mat2 u1 = qsim::u3_matrix(p1[0], p1[1], p1[2]);
  qsim::StateVector psi(qubits);
  Index q = 0;
  for (auto _ : state) {
    psi.apply_block_diag_2q(u0, u1, q, (q + 1) % qubits);
    q = (q + 1) % qubits;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(psi.dim()));
}
BENCHMARK(BM_ApplyBlockDiag2Q)->Arg(8)->Arg(12)->Arg(16);

void BM_CanonicalizeAnsatz(benchmark::State& state) {
  // What the compiled-circuit cache saves per QuBatch chunk: one full
  // probe + two-pass fusion of the frozen 12-block ansatz.
  const qsim::Circuit c = frozen_ansatz(8, 12, 11);
  for (auto _ : state) {
    const qsim::Circuit canon = qsim::canonicalize_for_backend(c);
    benchmark::DoNotOptimize(canon.num_ops());
  }
  // Source ops canonicalized per second.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.num_ops()));
}
BENCHMARK(BM_CanonicalizeAnsatz);

void BM_CompiledCacheHit(benchmark::State& state) {
  // The per-chunk cost after the first compile: one structural key match.
  const qsim::Circuit c = frozen_ansatz(8, 12, 11);
  qsim::CompiledCircuitCache cache;
  (void)cache.canonical(c, qsim::BackendKind::kStatevector);  // warm
  for (auto _ : state) {
    auto canon = cache.canonical(c, qsim::BackendKind::kStatevector);
    benchmark::DoNotOptimize(canon.get());
  }
  // Cache lookups served per second.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CompiledCacheHit);

/// CI perf gate: fused forward must not be slower than unfused. Best-of-R
/// timing of K forwards each, on the 8-qubit 12-block frozen ansatz.
int fusion_speedup_guard() {
  using clock = std::chrono::steady_clock;
  const qsim::Circuit original = frozen_ansatz(8, 12, 11);
  const qsim::Circuit fused = qsim::canonicalize_for_backend(original);

  constexpr int kReps = 5;
  constexpr int kIters = 60;
  const auto best_of = [&](const qsim::Circuit& c) {
    double best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = clock::now();
      for (int it = 0; it < kIters; ++it) {
        qsim::StateVector psi(8);
        qsim::run_circuit(c, {}, psi);
        benchmark::DoNotOptimize(psi.amplitudes().data());
      }
      const std::chrono::duration<double, std::milli> dt = clock::now() - t0;
      best = std::min(best, dt.count());
    }
    return best;
  };

  best_of(original);  // warm caches/pages before the measured passes
  const double unfused_ms = best_of(original);
  const double fused_ms = best_of(fused);
  const double speedup = unfused_ms / fused_ms;
  std::printf(
      "fusion guard: frozen 8q/12-block ansatz forward %zu -> %zu ops, "
      "unfused %.3f ms, fused %.3f ms (%.2fx)\n",
      original.num_ops(), fused.num_ops(), unfused_ms, fused_ms, speedup);
  if (fused_ms > unfused_ms) {
    std::fprintf(stderr,
                 "fusion guard FAILED: fused forward is slower than unfused "
                 "(%.3f ms > %.3f ms)\n",
                 fused_ms, unfused_ms);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int rc = qugeo::bench::run_micro_benchmarks(argc, argv);
  if (rc != 0) return rc;
  return fusion_speedup_guard();
}
