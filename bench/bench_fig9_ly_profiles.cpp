// Figure 9: Q-M-LY visualization and profiles — the layer decoder's
// interface recovery on physics-guided vs naive data.
//
// Paper: Q-D-FW + Q-M-PX misses two interfaces (A, B); D-Sample + Q-M-LY
// finds all interfaces but misorders three (C, D, E); Q-D-FW + Q-M-LY
// recovers all interfaces with correct relative ordering. Headline SSIMs
// on the shown sample: 0.9606 / 0.9492 / 0.9854.
#include "bench_common.h"
#include "metrics/profile_analysis.h"

namespace {

using namespace qugeo;

struct Combo {
  const char* dataset;
  core::DecoderKind decoder;
  const char* label;
};

struct Result {
  Real ssim = 0;
  Real matched = 0;
  Real ordered = 0;
};

Result run_combo(const bench::Setup& setup, const Combo& combo) {
  const auto split = setup.data.split();
  const auto& ds = core::select_dataset(setup.data, combo.dataset);
  core::ModelConfig mc;
  mc.decoder = combo.decoder;
  mc.vel_rows = ds.vel_rows;
  mc.vel_cols = ds.vel_cols;
  Rng init(42);
  core::QuGeoModel model(mc, init);
  const auto train = core::train_model(model, ds, split, setup.train);

  Result r;
  r.ssim = train.final_ssim;
  std::vector<const data::ScaledSample*> ptrs;
  for (std::size_t i : split.test) ptrs.push_back(&ds.samples[i]);
  const auto preds = model.predict(ptrs);
  std::size_t counted = 0;
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    const auto& target = ds.samples[split.test[i]].velocity;
    std::vector<Real> gt_prof(ds.vel_rows), pr_prof(ds.vel_rows);
    for (std::size_t row = 0; row < ds.vel_rows; ++row) {
      gt_prof[row] = target[row * ds.vel_cols + 4];
      pr_prof[row] = preds[i][row * ds.vel_cols + 4];
    }
    const auto gt_if = metrics::detect_interfaces(gt_prof, 0.05);
    const auto pr_if = metrics::detect_interfaces(pr_prof, 0.05);
    if (gt_if.empty()) continue;
    const auto score = metrics::score_interfaces(gt_if, pr_if, 1);
    r.matched += static_cast<Real>(score.matched) /
                 static_cast<Real>(score.total_true);
    r.ordered += static_cast<Real>(score.ordering_correct) /
                 static_cast<Real>(score.total_true);
    ++counted;
  }
  if (counted > 0) {
    r.matched /= static_cast<Real>(counted);
    r.ordered /= static_cast<Real>(counted);
  }
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 9: layer-wise decoder profiles (interfaces + ordering)",
      "Q-D-FW&PX 0.9492 (misses interfaces), D-Sample&LY 0.9606 (misorders), "
      "Q-D-FW&LY 0.9854 (all correct)");
  bench::Setup setup = bench::standard_setup();
  bench::print_run_scale(setup);

  const Combo combos[] = {
      {"Q-D-FW", core::DecoderKind::kPixel, "Q-D-FW + Q-M-PX"},
      {"D-Sample", core::DecoderKind::kLayer, "D-Sample + Q-M-LY"},
      {"Q-D-FW", core::DecoderKind::kLayer, "Q-D-FW + Q-M-LY"},
  };

  std::printf("\n%-20s | %-8s | %-14s | %-14s\n", "Pipeline", "SSIM",
              "iface matched", "iface ordered");
  std::printf("---------------------+----------+----------------+----------------\n");
  std::vector<Result> results;
  for (const Combo& c : combos) {
    const Result r = run_combo(setup, c);
    results.push_back(r);
    std::printf("%-20s | %8.4f | %13.1f%% | %13.1f%%\n", c.label, r.ssim,
                100 * r.matched, 100 * r.ordered);
  }
  std::printf("\nExpected shape: the full pipeline (Q-D-FW + Q-M-LY) dominates "
              "both partial pipelines on ordering and SSIM.\n");
  if (results[2].ssim >= results[0].ssim && results[2].ssim >= results[1].ssim)
    std::printf("[shape OK] Q-D-FW + Q-M-LY is the best combination.\n");
  return 0;
}
