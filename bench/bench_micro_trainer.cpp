// Microbenchmarks of the training loop: epoch-sharding scaling (the
// data-parallel gradient accumulation of train_model swept across shard
// counts on the shared pool) and the per-step cost of the sharded fold.
// Merges into BENCH_micro.json like every micro suite; the scaling rows
// are the evidence behind the QUGEO_GRAD_SHARDS guidance in
// docs/ARCHITECTURE.md.
#include <benchmark/benchmark.h>

#include "bench_micro_main.h"

#include <cmath>

#include "common/rng.h"
#include "core/trainer.h"

namespace {

using namespace qugeo;

/// Synthetic learnable dataset (same construction as the trainer tests):
/// row velocity = mean |waveform| of a slice, so the task is non-trivial
/// but cheap to generate.
data::ScaledDataset synthetic_dataset(std::size_t n,
                                            std::size_t wave_size,
                                            std::size_t rows,
                                            std::size_t cols, Rng& rng) {
  data::ScaledDataset ds;
  ds.scaler_name = "synthetic";
  ds.nsrc = 1;
  ds.nt = 1;
  ds.nrec = wave_size;
  ds.vel_rows = rows;
  ds.vel_cols = cols;
  ds.samples.resize(n);
  for (auto& s : ds.samples) {
    s.waveform.resize(wave_size);
    rng.fill_uniform(s.waveform, -1, 1);
    s.velocity.resize(rows * cols);
    const std::size_t chunk = wave_size / rows;
    for (std::size_t i = 0; i < rows; ++i) {
      Real m = 0;
      for (std::size_t k = 0; k < chunk; ++k)
        m += std::abs(s.waveform[i * chunk + k]);
      const Real v = m / static_cast<Real>(chunk);
      for (std::size_t j = 0; j < cols; ++j) s.velocity[i * cols + j] = v;
    }
  }
  return ds;
}

core::ModelConfig tiny_model() {
  core::ModelConfig mc;
  mc.group_data_qubits = {3};
  mc.ansatz.blocks = 3;
  mc.decoder = core::DecoderKind::kLayer;
  mc.vel_rows = 3;
  mc.vel_cols = 2;
  return mc;
}

void BM_TrainEpochSharded(benchmark::State& state) {
  // One full training epoch per iteration, swept across gradient shard
  // counts (Arg = grad_shards; 0 = one slot per chunk, the pre-sharding
  // layout). Results are bit-identical across rows — only the wall clock
  // and the gradient-buffer footprint move.
  const auto shards = static_cast<std::size_t>(state.range(0));
  Rng rng(61);
  const data::ScaledDataset ds = synthetic_dataset(32, 8, 3, 2, rng);
  const data::SplitView split = data::split_dataset(32, 24);
  core::TrainConfig tc;
  tc.epochs = 1;
  tc.initial_lr = 0.05;
  tc.chunks_per_step = 24;  // one accumulation group spanning the epoch
  tc.grad_shards = shards;
  tc.log_every = 0;
  for (auto _ : state) {
    Rng init(62);
    core::QuGeoModel model(tiny_model(), init);
    const core::TrainResult result = core::train_model(model, ds, split, tc);
    benchmark::DoNotOptimize(result.final_mse);
  }
  // Samples trained per second.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(split.train.size()));
  state.counters["grad_shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_TrainEpochSharded)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_GradientPlanCacheHit(benchmark::State& state) {
  // The per-chunk cost of the memoized gradient plan after the first
  // build: one structural key match under the cache mutex.
  Rng init(63);
  core::QuGeoModel model(tiny_model(), init);
  Rng rng(64);
  data::ScaledDataset ds = synthetic_dataset(2, 8, 3, 2, rng);
  std::vector<const data::ScaledSample*> chunk = {&ds.samples[0]};
  std::vector<Real> grads(model.num_params(), Real(0));
  (void)model.loss_and_gradient(chunk, grads);  // warm: builds the plan
  for (auto _ : state) {
    const Real loss = model.loss_and_gradient(chunk, grads);
    benchmark::DoNotOptimize(loss);
  }
  // Gradient evaluations served per second (each = 2 plan lookups).
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GradientPlanCacheHit);

}  // namespace

QUGEO_BENCH_MICRO_MAIN()
