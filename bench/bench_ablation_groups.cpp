// Ablation: ST-Encoder grouping (Sec. 3.2.1's "# groups" hyperparameter).
//
// One group x 8 qubits encodes all 256 values in a single register; two
// groups x 7 qubits (14 total, still within the paper's 16-qubit budget)
// encode each source-pair separately with inter-group CU3 communication.
// Reduced training budget: the 14-qubit state is 64x larger.
#include "bench_common.h"

int main() {
  using namespace qugeo;
  bench::print_header(
      "Ablation: encoder grouping (1 group x 8 qubits vs 2 groups x 7 qubits)",
      "design-space study behind Sec. 3.2.1 / Fig. 2 '# groups'");
  bench::Setup setup = bench::standard_setup();
  // The grouped model simulates 14 qubits (a 64x larger state); trim the
  // budget so the sweep stays minutes-fast at default scale.
  setup.train.epochs = std::max<std::size_t>(12, setup.train.epochs / 8);
  bench::print_run_scale(setup);

  struct Variant {
    const char* label;
    std::vector<Index> groups;
    std::size_t blocks;
  };
  // Roughly parameter-matched: 12 blocks x 48 params vs 6 blocks x 84+.
  const Variant variants[] = {
      {"1 group  x 8 qubits", {8}, 12},
      {"2 groups x 7 qubits", {7, 7}, 6},
  };

  std::printf("\n%-22s | %-7s | %-7s | %-8s | %-10s\n", "Encoder", "Qubits",
              "Params", "SSIM", "MSE");
  std::printf("-----------------------+---------+---------+----------+-----------\n");
  for (const Variant& v : variants) {
    core::ExperimentSpec spec;
    spec.dataset = "Q-D-FW";
    spec.decoder = core::DecoderKind::kLayer;
    spec.group_data_qubits = v.groups;
    spec.blocks = v.blocks;
    spec.entangle_every = 2;
    const auto r = run_vqc_experiment(setup.data, spec, setup.train);
    std::size_t qubits = 0;
    for (Index g : v.groups) qubits += g;
    std::printf("%-22s | %7zu | %7zu | %8.4f | %10.3e\n", v.label, qubits,
                r.param_count, r.train.final_ssim, r.train.final_mse);
  }
  std::printf("\nBoth configurations fit the paper's <=16-qubit device budget.\n");
  return 0;
}
