// Figure 5: Q-M-PX trained on datasets scaled by D-Sample / Q-D-FW /
// Q-D-CNN — final SSIM-vs-MSE points plus the per-epoch convergence curves
// of panels (b) and (c), written to CSV for plotting.
//
// Paper: Q-D-FW SSIM 0.8591 / MSE 4.61e-4; Q-D-CNN SSIM 0.8619 / MSE
// 4.60e-4; both clearly dominate D-Sample.
#include <filesystem>

#include "bench_common.h"
#include "common/io.h"

int main() {
  using namespace qugeo;
  bench::print_header(
      "Figure 5: physics-guided data scaling (Q-M-PX on three scalers)",
      "Q-D-FW SSIM 0.8591 / Q-D-CNN SSIM 0.8619 >> D-Sample; panels (b),(c) "
      "= convergence curves");
  bench::Setup setup = bench::standard_setup();
  bench::print_run_scale(setup);

  std::filesystem::create_directories("bench_results");

  std::printf("\n%-10s | %-8s | %-10s  (each point = panel (a) marker)\n",
              "Dataset", "SSIM", "MSE");
  std::printf("-----------+----------+------------\n");
  for (const char* ds : {"D-Sample", "Q-D-FW", "Q-D-CNN"}) {
    core::ExperimentSpec spec;
    spec.dataset = ds;
    spec.decoder = core::DecoderKind::kPixel;
    const auto r = run_vqc_experiment(setup.data, spec, setup.train);
    std::printf("%-10s | %8.4f | %10.3e\n", ds, r.train.final_ssim,
                r.train.final_mse);

    // Panels (b) and (c): SSIM / MSE vs epoch.
    CsvWriter csv(std::string("bench_results/fig5_curve_") + ds + ".csv",
                  {"epoch", "train_loss", "test_ssim", "test_mse"});
    for (std::size_t e = 0; e < r.train.curve.size(); ++e) {
      const auto& rec = r.train.curve[e];
      const Real row[] = {static_cast<Real>(e), rec.train_loss, rec.test_ssim,
                          rec.test_mse};
      csv.append(row);
    }
  }
  std::printf("\nConvergence curves written to bench_results/fig5_curve_*.csv\n");
  std::printf("Expected shape: Q-D-FW and Q-D-CNN converge to higher SSIM / "
              "lower MSE than D-Sample.\n");
  return 0;
}
