// Microbenchmarks of the seismic substrate: FDTD throughput vs grid size
// and stencil order, plus the two acquisition scales of QuGeoData.
#include <benchmark/benchmark.h>

#include "bench_micro_main.h"

#include "common/rng.h"
#include "seismic/forward_modeling.h"

namespace {

using namespace qugeo;

void BM_FdtdStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int order = static_cast<int>(state.range(1));
  const seismic::VelocityModel m(seismic::Grid2D{n, n, 10, 10}, 3000.0);
  seismic::FdtdConfig cfg;
  cfg.space_order = order;
  cfg.dt = 0.8 * seismic::max_stable_dt(m, order);
  cfg.nt = 50;
  const seismic::RickerWavelet w(15.0);
  const seismic::ReceiverLine rec = seismic::make_receiver_line(n, 8);
  for (auto _ : state) {
    const auto g = seismic::simulate_shot(m, {0, n / 2}, w, rec, cfg);
    benchmark::DoNotOptimize(g.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 50 *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_FdtdStep)
    ->Args({70, 2})
    ->Args({70, 4})
    ->Args({70, 8})
    ->Args({140, 4});

void BM_FullScaleShot(benchmark::State& state) {
  // One OpenFWI-scale shot: 70x70 grid, 1000 steps, 70 receivers.
  Rng rng(1);
  const auto m = seismic::generate_flatvel(seismic::FlatVelConfig{}, rng);
  const seismic::Acquisition acq = seismic::openfwi_acquisition();
  seismic::FdtdConfig cfg = acq.fdtd;
  cfg.dt = 1e-3;
  cfg.nt = 1000;
  const seismic::RickerWavelet w(acq.wavelet_freq_hz);
  const seismic::ReceiverLine rec = seismic::make_receiver_line(70, 70);
  for (auto _ : state) {
    const auto g = seismic::simulate_shot(m, {0, 35}, w, rec, cfg);
    benchmark::DoNotOptimize(g.data().data());
  }
  // Grid-cell updates per second across the full time loop.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cfg.nt) *
                          static_cast<std::int64_t>(70 * 70));
}
BENCHMARK(BM_FullScaleShot)->Unit(benchmark::kMillisecond);

void BM_QuantumScaleRemodel(benchmark::State& state) {
  // The Q-D-FW scaling path for one sample (Sec. 3.1.1).
  Rng rng(2);
  const auto m = seismic::generate_flatvel(seismic::FlatVelConfig{}, rng);
  const seismic::Acquisition acq = seismic::quantum_acquisition();
  std::size_t values = 0;
  for (auto _ : state) {
    const auto d = seismic::physics_guided_remodel(m, 8, 8, acq, 8);
    benchmark::DoNotOptimize(d.data().data());
    values = d.data().size();
  }
  // Remodeled data values (shots x receivers x samples) produced per second.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values));
}
BENCHMARK(BM_QuantumScaleRemodel)->Unit(benchmark::kMillisecond);

void BM_FlatVelGeneration(benchmark::State& state) {
  Rng rng(3);
  const seismic::FlatVelConfig cfg;
  for (auto _ : state) {
    const auto m = seismic::generate_flatvel(cfg, rng);
    benchmark::DoNotOptimize(m.data().data());
  }
  // Velocity-model cells generated per second.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cfg.nz * cfg.nx));
}
BENCHMARK(BM_FlatVelGeneration);

}  // namespace

QUGEO_BENCH_MICRO_MAIN()
