// Sustained multi-producer load driver for the serving front-end
// (src/serve): N producer threads submit single-sample requests with a
// bounded outstanding window, and the run asserts the three serving
// invariants the CI perf-smoke job gates on:
//
//   1. Throughput: the coalescing server beats the same N threads calling
//      predict() singleton-style (micro-batching amortizes gate dispatch
//      through the SoA batched kernels).
//   2. Tail stability: steady-state p99 latency in the second measurement
//      window stays within 3x (or +2 ms) of the first — no runaway queue.
//   3. Zero silent losses: completed + failed + rejected == submitted and
//      nothing stays pending after shutdown, including under deliberate
//      overload against a tiny queue.
//
// Results merge into BENCH_micro.json (QUGEO_BENCH_JSON overrides the
// path) alongside the bench_micro_* suites. Returns nonzero when a gate
// fails, so CI turns red on a serving regression.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/model.h"
#include "serve/server.h"

namespace qugeo::bench {
namespace {

using std::chrono::steady_clock;

constexpr std::size_t kPerThreadPerWindow = 200;
constexpr std::size_t kOutstandingWindow = 16;
constexpr std::size_t kSamplePool = 256;

std::size_t producer_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t n = hw == 0 ? 2 : hw;
  return n < 2 ? 2 : (n > 8 ? 8 : n);
}

core::ModelConfig bench_model_config() {
  core::ModelConfig mc;
  mc.group_data_qubits = {6};  // 64-amplitude state: real work per request
  mc.ansatz.blocks = 6;
  mc.decoder = core::DecoderKind::kLayer;
  mc.vel_rows = 4;
  mc.vel_cols = 4;
  mc.execution.batch = 8;  // same SoA width for baseline and server
  return mc;
}

std::vector<data::ScaledSample> make_samples(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<data::ScaledSample> samples(n);
  for (auto& s : samples) {
    s.waveform.resize(64);
    s.velocity.resize(16);
    rng.fill_uniform(s.waveform, -1, 1);
    rng.fill_uniform(s.velocity, 0, 1);
  }
  return samples;
}

double seconds_since(steady_clock::time_point t0) {
  return std::chrono::duration<double>(steady_clock::now() - t0).count();
}

/// Baseline: every producer thread calls predict() on one sample at a
/// time — the pattern the server exists to replace.
double run_direct_baseline(const core::QuGeoModel& model,
                           const std::vector<data::ScaledSample>& samples,
                           std::size_t producers, double* out_seconds) {
  const auto t0 = steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t t = 0; t < producers; ++t)
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThreadPerWindow; ++i) {
        const data::ScaledSample* one =
            &samples[(t * kPerThreadPerWindow + i) % samples.size()];
        const auto preds = model.predict({&one, 1});
        if (preds.size() != 1) std::abort();  // keep the call un-elided
      }
    });
  for (auto& th : threads) th.join();
  const double secs = seconds_since(t0);
  *out_seconds = secs;
  return static_cast<double>(producers * kPerThreadPerWindow) / secs;
}

/// One sustained window: every producer keeps up to kOutstandingWindow
/// requests in flight. Returns the number of non-kOk results (which the
/// gates require to be zero in the steady-state phase).
std::size_t run_server_window(serve::ModelServer& server,
                              const std::vector<data::ScaledSample>& samples,
                              std::size_t producers) {
  std::atomic<std::size_t> not_ok{0};
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t t = 0; t < producers; ++t)
    threads.emplace_back([&, t] {
      std::deque<std::future<serve::PredictResult>> window;
      const auto settle = [&](std::future<serve::PredictResult>&& f) {
        if (f.get().status != serve::RequestStatus::kOk)
          not_ok.fetch_add(1, std::memory_order_relaxed);
      };
      for (std::size_t i = 0; i < kPerThreadPerWindow; ++i) {
        window.push_back(server.submit(
            samples[(t * kPerThreadPerWindow + i) % samples.size()]));
        if (window.size() >= kOutstandingWindow) {
          settle(std::move(window.front()));
          window.pop_front();
        }
      }
      while (!window.empty()) {
        settle(std::move(window.front()));
        window.pop_front();
      }
    });
  for (auto& th : threads) th.join();
  return not_ok.load();
}

/// Blast a tiny queue with blind submits to force backpressure, then check
/// that every request is accounted for (the zero-silent-loss invariant
/// must hold even when most requests are shed).
bool run_overload_phase(const core::QuGeoModel& model,
                        const std::vector<data::ScaledSample>& samples,
                        std::size_t producers) {
  serve::ServeConfig sc;
  sc.max_batch = 4;
  sc.deadline = std::chrono::microseconds{0};
  sc.queue_capacity = 8;
  sc.full_threshold = 4;
  serve::ModelServer server(model, sc);
  std::vector<std::thread> threads;
  std::vector<std::vector<std::future<serve::PredictResult>>> futures(producers);
  for (std::size_t t = 0; t < producers; ++t)
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < 100; ++i)
        futures[t].push_back(server.submit(samples[i % samples.size()]));
    });
  for (auto& th : threads) th.join();
  for (auto& per_thread : futures)
    for (auto& f : per_thread) (void)f.get();
  server.shutdown();
  const serve::ServerStats s = server.stats();
  std::printf("[overload] submitted=%llu completed=%llu rejected=%llu failed=%llu\n",
              static_cast<unsigned long long>(s.submitted),
              static_cast<unsigned long long>(s.completed),
              static_cast<unsigned long long>(s.rejected_overload),
              static_cast<unsigned long long>(s.failed));
  if (s.pending() != 0 ||
      s.submitted != s.completed + s.failed + s.rejected_overload +
                         s.rejected_shutdown) {
    std::fprintf(stderr, "FAIL: overload phase lost requests silently\n");
    return false;
  }
  return true;
}

std::array<std::uint64_t, serve::kServeHistogramBuckets> bucket_delta(
    const std::array<std::uint64_t, serve::kServeHistogramBuckets>& after,
    const std::array<std::uint64_t, serve::kServeHistogramBuckets>& before) {
  std::array<std::uint64_t, serve::kServeHistogramBuckets> out{};
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = after[i] - before[i];
  return out;
}

int run() {
  const std::size_t producers = producer_count();
  print_header("bench_serve_load: sustained multi-producer serving load",
               "serving front-end (no paper figure; CI perf gate)");
  std::printf("[setup] producers=%zu requests/window=%zu outstanding=%zu\n",
              producers, producers * kPerThreadPerWindow, kOutstandingWindow);

  Rng rng(123);
  const core::QuGeoModel model(bench_model_config(), rng);
  const auto samples = make_samples(kSamplePool, 321);

  // -------------------------------------------------- direct baseline --
  double direct_secs = 0;
  const double direct_rps =
      run_direct_baseline(model, samples, producers, &direct_secs);
  std::printf("[direct] %zu threads x %zu singleton predicts: %.0f req/s\n",
              producers, kPerThreadPerWindow, direct_rps);

  // ------------------------------------------- coalescing server load --
  serve::ServeConfig sc;
  sc.max_batch = 32;
  sc.deadline = std::chrono::microseconds{200};
  sc.queue_capacity = 4096;
  serve::ModelServer server(model, sc);

  const serve::ServerStats s0 = server.stats();
  const auto t0 = steady_clock::now();
  const std::size_t bad1 = run_server_window(server, samples, producers);
  const serve::ServerStats s1 = server.stats();
  const std::size_t bad2 = run_server_window(server, samples, producers);
  const double total_secs = seconds_since(t0);
  const serve::ServerStats s2 = server.stats();
  server.shutdown();
  const serve::ServerStats final_stats = server.stats();

  const std::uint64_t served = s2.completed - s0.completed;
  const double server_rps = static_cast<double>(served) / total_secs;
  const double p99_w1 =
      serve::histogram_quantile(
          bucket_delta(s1.latency_us_buckets, s0.latency_us_buckets), 0.99);
  const double p99_w2 =
      serve::histogram_quantile(
          bucket_delta(s2.latency_us_buckets, s1.latency_us_buckets), 0.99);
  std::printf("[server] %.0f req/s over %llu requests (%.2fx direct), "
              "batches=%llu (size=%llu deadline=%llu drain=%llu) "
              "max_depth=%zu\n",
              server_rps, static_cast<unsigned long long>(served),
              server_rps / direct_rps,
              static_cast<unsigned long long>(final_stats.batches_dispatched),
              static_cast<unsigned long long>(final_stats.flush_size),
              static_cast<unsigned long long>(final_stats.flush_deadline),
              static_cast<unsigned long long>(final_stats.flush_drain),
              final_stats.max_queue_depth);
  std::printf("[latency] p50=%.0fus p95=%.0fus p99(w1)=%.0fus p99(w2)=%.0fus\n",
              final_stats.latency_quantile_us(0.5),
              final_stats.latency_quantile_us(0.95), p99_w1, p99_w2);

  // ------------------------------------------------------------ gates --
  bool pass = true;
  if (bad1 != 0 || bad2 != 0) {
    std::fprintf(stderr, "FAIL: %zu steady-state request(s) not kOk\n",
                 bad1 + bad2);
    pass = false;
  }
  if (final_stats.pending() != 0 ||
      final_stats.submitted !=
          final_stats.completed + final_stats.failed +
              final_stats.rejected_overload + final_stats.rejected_shutdown) {
    std::fprintf(stderr, "FAIL: request accounting does not balance\n");
    pass = false;
  }
  if (server_rps <= direct_rps) {
    std::fprintf(stderr,
                 "FAIL: coalescing server (%.0f req/s) did not beat the "
                 "singleton-predict baseline (%.0f req/s)\n",
                 server_rps, direct_rps);
    pass = false;
  }
  // Sustained-load stability: the second window's tail must not run away
  // from the first (allow 3x or +2 ms of scheduler noise on small boxes).
  if (p99_w2 > std::max(3.0 * p99_w1, p99_w1 + 2000.0)) {
    std::fprintf(stderr,
                 "FAIL: p99 drifted under sustained load (%.0fus -> %.0fus)\n",
                 p99_w1, p99_w2);
    pass = false;
  }
  if (!run_overload_phase(model, samples, producers)) pass = false;

  JsonReport report;
  const double total_reqs = std::max(1.0, static_cast<double>(served));
  report.add("BM_ServeDirectPredict",
             direct_secs * 1000.0 /
                 static_cast<double>(producers * kPerThreadPerWindow),
             0.0, static_cast<std::int64_t>(producers * kPerThreadPerWindow),
             direct_rps);
  report.add("BM_ServeCoalescedLoad", total_secs * 1000.0 / total_reqs, 0.0,
             static_cast<std::int64_t>(served), server_rps);
  report.add("BM_ServeSteadyP99", p99_w2 / 1000.0, 0.0,
             static_cast<std::int64_t>(served), server_rps);
  const char* path = std::getenv("QUGEO_BENCH_JSON");
  report.write_merged(path != nullptr ? path : "BENCH_micro.json");

  std::printf(pass ? "[gates] all serving gates PASSED\n"
                   : "[gates] serving gates FAILED\n");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace qugeo::bench

int main() { return qugeo::bench::run(); }
