// Figure 8: Q-M-PX vs Q-M-LY across the three data-scaling methods.
//
// Paper series (SSIM): D-Sample 0.800 -> 0.842, Q-D-FW 0.859 -> 0.892,
// Q-D-CNN 0.862 -> 0.905; average MSE improvement 33.2%; the fully
// straightforward pipeline (D-Sample + Q-M-PX) to the full QuGeo pipeline
// is 0.800 -> 0.905 SSIM and -61.7% MSE.
#include "bench_common.h"

int main() {
  using namespace qugeo;
  bench::print_header(
      "Figure 8: decoder design (Q-M-PX vs Q-M-LY) on all data scalings",
      "SSIM 0.800->0.842 (D-Sample), 0.859->0.892 (Q-D-FW), "
      "0.862->0.905 (Q-D-CNN)");
  bench::Setup setup = bench::standard_setup();
  bench::print_run_scale(setup);

  struct Row {
    std::string dataset;
    core::ExperimentResult px, ly;
  };
  std::vector<Row> rows;
  for (const char* ds : {"D-Sample", "Q-D-FW", "Q-D-CNN"}) {
    core::ExperimentSpec spec;
    spec.dataset = ds;
    spec.decoder = core::DecoderKind::kPixel;
    const auto px = run_vqc_experiment(setup.data, spec, setup.train);
    spec.decoder = core::DecoderKind::kLayer;
    const auto ly = run_vqc_experiment(setup.data, spec, setup.train);
    rows.push_back({ds, px, ly});
  }

  std::printf("\n%-10s | %-8s %-10s | %-8s %-10s | %-9s %-9s\n", "Dataset",
              "PX SSIM", "PX MSE", "LY SSIM", "LY MSE", "dSSIM", "dMSE%%");
  std::printf("-----------+---------------------+---------------------+--------------------\n");
  Real mse_improve_sum = 0;
  for (const Row& r : rows) {
    const Real dssim = r.ly.train.final_ssim - r.px.train.final_ssim;
    const Real dmse = 100.0 * (r.px.train.final_mse - r.ly.train.final_mse) /
                      r.px.train.final_mse;
    mse_improve_sum += dmse;
    std::printf("%-10s | %8.4f %10.3e | %8.4f %10.3e | %+9.4f %+8.2f%%\n",
                r.dataset.c_str(), r.px.train.final_ssim, r.px.train.final_mse,
                r.ly.train.final_ssim, r.ly.train.final_mse, dssim, dmse);
  }
  std::printf("\nAverage MSE improvement of Q-M-LY over Q-M-PX: %.2f%% "
              "(paper: 33.23%%)\n",
              mse_improve_sum / 3.0);

  const Real base_ssim = rows[0].px.train.final_ssim;   // D-Sample + Q-M-PX
  const Real best_ssim = rows[2].ly.train.final_ssim;   // Q-D-CNN + Q-M-LY
  const Real base_mse = rows[0].px.train.final_mse;
  const Real best_mse = rows[2].ly.train.final_mse;
  std::printf("Straightforward -> full QuGeo: SSIM %.4f -> %.4f "
              "(paper 0.800 -> 0.905), MSE %+.2f%% (paper -61.69%%)\n",
              base_ssim, best_ssim, 100.0 * (best_mse - base_mse) / base_mse);
  return 0;
}
