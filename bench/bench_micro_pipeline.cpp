// Microbenchmarks of the learning pipeline: one training step (forward +
// adjoint backward + Adam) for each decoder and QuBatch size, one CNN
// baseline step, and SSIM evaluation throughput.
#include <benchmark/benchmark.h>

#include "bench_micro_main.h"

#include "core/classical_baseline.h"
#include "core/model.h"
#include "metrics/image_metrics.h"

namespace {

using namespace qugeo;

data::ScaledSample random_sample(Rng& rng) {
  data::ScaledSample s;
  s.waveform.resize(256);
  s.velocity.resize(64);
  rng.fill_uniform(s.waveform, -1, 1);
  rng.fill_uniform(s.velocity, 0, 1);
  return s;
}

void BM_VqcTrainStep(benchmark::State& state) {
  const auto decoder = state.range(0) == 0 ? core::DecoderKind::kPixel
                                           : core::DecoderKind::kLayer;
  const auto batch_log2 = static_cast<Index>(state.range(1));
  core::ModelConfig mc;
  mc.decoder = decoder;
  mc.batch_log2 = batch_log2;
  Rng rng(1);
  core::QuGeoModel model(mc, rng);

  std::vector<data::ScaledSample> samples;
  for (Index i = 0; i < model.batch_size(); ++i)
    samples.push_back(random_sample(rng));
  std::vector<const data::ScaledSample*> chunk;
  for (const auto& s : samples) chunk.push_back(&s);
  std::vector<Real> grads(model.num_params());

  for (auto _ : state) {
    std::fill(grads.begin(), grads.end(), Real(0));
    const Real loss = model.loss_and_gradient(chunk, grads);
    benchmark::DoNotOptimize(loss);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(model.batch_size()));
}
BENCHMARK(BM_VqcTrainStep)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({1, 2})
    ->Unit(benchmark::kMicrosecond);

void BM_VqcPredict(benchmark::State& state) {
  core::ModelConfig mc;
  mc.decoder = core::DecoderKind::kLayer;
  Rng rng(2);
  core::QuGeoModel model(mc, rng);
  const data::ScaledSample s = random_sample(rng);
  const data::ScaledSample* chunk[] = {&s};
  for (auto _ : state) {
    auto preds = model.predict(chunk);
    benchmark::DoNotOptimize(preds.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_VqcPredict)->Unit(benchmark::kMicrosecond);

void BM_CnnBaselineStep(benchmark::State& state) {
  Rng rng(3);
  core::ClassicalConfig cc;
  cc.decoder = core::DecoderKind::kLayer;
  core::ClassicalFwiNet net(cc, rng);
  data::ScaledDataset ds;
  ds.samples.push_back(random_sample(rng));
  ds.samples.push_back(random_sample(rng));
  const data::SplitView split = data::split_dataset(2, 1);
  core::TrainConfig tc;
  tc.epochs = 1;
  tc.initial_lr = 0.01;
  for (auto _ : state) {
    const auto r = net.train(ds, split, tc);
    benchmark::DoNotOptimize(r.final_mse);
  }
  // Samples trained per second (one epoch over the dataset per iteration).
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ds.samples.size()));
}
BENCHMARK(BM_CnnBaselineStep)->Unit(benchmark::kMicrosecond);

void BM_Ssim8x8(benchmark::State& state) {
  Rng rng(4);
  std::vector<Real> a(64), b(64);
  rng.fill_uniform(a, 0, 1);
  rng.fill_uniform(b, 0, 1);
  metrics::SsimOptions opts;
  opts.data_range = 1.0;
  for (auto _ : state) {
    const Real s = metrics::ssim(a, b, 8, 8, opts);
    benchmark::DoNotOptimize(s);
  }
  // Pixels compared per second.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Ssim8x8);

void BM_SsimLarge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  std::vector<Real> a(n * n), b(n * n);
  rng.fill_uniform(a, 0, 1);
  rng.fill_uniform(b, 0, 1);
  for (auto _ : state) {
    const Real s = metrics::ssim(a, b, n, n, {});
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_SsimLarge)->Arg(70)->Arg(256);

}  // namespace

QUGEO_BENCH_MICRO_MAIN()
