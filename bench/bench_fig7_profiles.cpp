// Figure 7: predicted velocity maps of Q-M-PX per data scaling, with the
// vertical velocity-profile analysis at x = 400 m.
//
// Paper: profile SSIMs D-Sample 0.9613 / Q-D-CNN 0.9742 / Q-D-FW 0.9772;
// D-Sample recovers only 2 of 7 inflection points while Q-D-FW and Q-D-CNN
// recover 3 correct interfaces.
#include "bench_common.h"
#include "metrics/image_metrics.h"
#include "metrics/profile_analysis.h"

namespace {

using namespace qugeo;

struct ProfileStats {
  Real profile_ssim = 0;       // 1 - normalized profile error, SSIM-like
  Real matched_frac = 0;       // matched interfaces / true interfaces
  Real ordering_frac = 0;      // correctly ordered / true interfaces
};

/// Column profile of an 8x8 map at the paper's x = 400 m (column 4 of 8
/// across the 700 m line).
std::vector<Real> column_profile(const std::vector<Real>& map, std::size_t cols,
                                 std::size_t col) {
  std::vector<Real> p(map.size() / cols);
  for (std::size_t i = 0; i < p.size(); ++i) p[i] = map[i * cols + col];
  return p;
}

ProfileStats profile_analysis(const core::QuGeoModel& model,
                              const data::ScaledDataset& ds,
                              const std::vector<std::size_t>& test) {
  ProfileStats stats;
  metrics::SsimOptions opts;
  opts.data_range = 1.0;
  std::size_t counted = 0;
  std::vector<const data::ScaledSample*> ptrs;
  for (std::size_t i : test) ptrs.push_back(&ds.samples[i]);
  const auto preds = model.predict(ptrs);
  for (std::size_t i = 0; i < test.size(); ++i) {
    const auto& target = ds.samples[test[i]].velocity;
    const auto gt_prof = column_profile(target, ds.vel_cols, 4);
    const auto pr_prof = column_profile(preds[i], ds.vel_cols, 4);
    // Profile "SSIM": 1-D SSIM over the depth profile (window shrinks).
    stats.profile_ssim += metrics::ssim(gt_prof, pr_prof, gt_prof.size(), 1, opts);

    const auto gt_if = metrics::detect_interfaces(gt_prof, 0.05);
    const auto pr_if = metrics::detect_interfaces(pr_prof, 0.05);
    if (!gt_if.empty()) {
      const auto score = metrics::score_interfaces(gt_if, pr_if, 1);
      stats.matched_frac += static_cast<Real>(score.matched) /
                            static_cast<Real>(score.total_true);
      stats.ordering_frac += static_cast<Real>(score.ordering_correct) /
                             static_cast<Real>(score.total_true);
      ++counted;
    }
  }
  const Real n = static_cast<Real>(test.size());
  stats.profile_ssim /= n;
  if (counted > 0) {
    stats.matched_frac /= static_cast<Real>(counted);
    stats.ordering_frac /= static_cast<Real>(counted);
  }
  return stats;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 7: Q-M-PX velocity maps + vertical profiles at x = 400 m",
      "profile SSIM: D-Sample 0.9613, Q-D-CNN 0.9742, Q-D-FW 0.9772; "
      "interface recovery: D-Sample 2/7, Q-D-FW & Q-D-CNN 3 correct");
  bench::Setup setup = bench::standard_setup();
  bench::print_run_scale(setup);
  const auto split = setup.data.split();

  std::printf("\n%-10s | %-12s | %-14s | %-14s\n", "Dataset", "profileSSIM",
              "iface matched", "iface ordered");
  std::printf("-----------+--------------+----------------+----------------\n");
  for (const char* ds_name : {"D-Sample", "Q-D-FW", "Q-D-CNN"}) {
    core::ExperimentSpec spec;
    spec.dataset = ds_name;
    spec.decoder = core::DecoderKind::kPixel;
    const auto& ds = core::select_dataset(setup.data, ds_name);

    core::ModelConfig mc;
    mc.decoder = spec.decoder;
    mc.vel_rows = ds.vel_rows;
    mc.vel_cols = ds.vel_cols;
    Rng init(spec.init_seed);
    core::QuGeoModel model(mc, init);
    (void)core::train_model(model, ds, split, setup.train);

    const ProfileStats stats = profile_analysis(model, ds, split.test);
    std::printf("%-10s | %12.4f | %13.1f%% | %13.1f%%\n", ds_name,
                stats.profile_ssim, 100 * stats.matched_frac,
                100 * stats.ordering_frac);
  }
  std::printf("\nExpected shape: physics-guided scalers (Q-D-FW, Q-D-CNN) "
              "recover more interfaces with better ordering than D-Sample.\n");
  return 0;
}
