// Table 1: QuBatch with batch sizes 1 / 2 / 4 on the Q-D-FW dataset using
// the Q-M-LY VQC.
//
// Paper: batch 1 (baseline) SSIM 0.8926; batch 2 (+1 qubit) 0.8864
// (-0.69%); batch 4 (+2 qubits) 0.8678 (-2.77%). The degradation comes from
// the joint amplitude normalization lowering per-sample precision.
#include "bench_common.h"

int main() {
  using namespace qugeo;
  bench::print_header(
      "Table 1: QuBatch batch-size sweep (Q-M-LY on Q-D-FW)",
      "SSIM 0.8926 (b=1) / 0.8864 (b=2, -0.69%) / 0.8678 (b=4, -2.77%)");
  bench::Setup setup = bench::standard_setup();
  bench::print_run_scale(setup);

  std::printf("\n%-6s | %-12s | %-8s | %-10s | %-10s\n", "Batch",
              "Extra qubits", "SSIM", "MSE", "vs BL");
  std::printf("-------+--------------+----------+------------+-----------\n");
  Real baseline_ssim = 0;
  for (Index blog : {Index{0}, Index{1}, Index{2}}) {
    core::ExperimentSpec spec;
    spec.dataset = "Q-D-FW";
    spec.decoder = core::DecoderKind::kLayer;
    spec.batch_log2 = blog;
    const auto r = run_vqc_experiment(setup.data, spec, setup.train);
    if (blog == 0) baseline_ssim = r.train.final_ssim;
    const Real degradation =
        100.0 * (baseline_ssim - r.train.final_ssim) / baseline_ssim;
    std::printf("%-6zu | %-12zu | %8.4f | %10.3e | %s%.2f%%\n",
                std::size_t{1} << blog, static_cast<std::size_t>(blog),
                r.train.final_ssim, r.train.final_mse,
                blog == 0 ? "BL " : "-", blog == 0 ? 0.0 : degradation);
  }
  std::printf("\nExpected shape: 2^N batches need only N extra qubits; SSIM "
              "degrades slightly and monotonically with batch size.\n");
  return 0;
}
