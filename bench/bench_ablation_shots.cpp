// Ablation: measurement shot budget. The paper evaluates with exact
// expectations (infinite shots); on hardware every <Z> is estimated from a
// finite number of measurements. This extension trains the headline Q-M-LY
// model and sweeps the shot budget of the sampled readout, reporting how
// much SSIM survives at realistic budgets.
#include "bench_common.h"
#include "core/shot_readout.h"

int main() {
  using namespace qugeo;
  bench::print_header(
      "Ablation: measurement shot budget for the trained Q-M-LY readout",
      "extension — hardware deployment cost the paper's NISQ story implies");
  bench::Setup setup = bench::standard_setup();
  setup.train.epochs = std::max<std::size_t>(20, setup.train.epochs / 2);
  bench::print_run_scale(setup);

  const auto& ds = setup.data.qdfw;
  const auto split = setup.data.split();
  core::ModelConfig mc;
  mc.decoder = core::DecoderKind::kLayer;
  Rng init(42);
  core::QuGeoModel model(mc, init);
  (void)train_model(model, ds, split, setup.train);
  const core::EvalMetrics exact = evaluate_model(model, ds, split.test);

  std::printf("\n%-10s | %-8s | %-10s\n", "shots", "SSIM", "MSE");
  std::printf("-----------+----------+-----------\n");
  Rng shot_rng(2024);
  for (std::size_t shots : {64u, 256u, 1024u, 4096u, 16384u}) {
    const core::EvalMetrics m =
        evaluate_model_with_shots(model, ds, split.test, shot_rng, shots);
    std::printf("%-10zu | %8.4f | %10.3e\n", shots, m.ssim, m.mse);
  }
  std::printf("%-10s | %8.4f | %10.3e\n", "exact", exact.ssim, exact.mse);
  std::printf("\nExpected shape: metrics converge to the exact readout as the "
              "shot budget grows; a few thousand shots per gather suffice.\n");
  return 0;
}
