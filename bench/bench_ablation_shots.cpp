// Ablation: measurement shot budget. The paper evaluates with exact
// expectations (infinite shots); on hardware every <Z> is estimated from a
// finite number of measurements, possibly behind a readout error. This
// extension trains the headline Q-M-LY model and sweeps the shot budget of
// the sampled readout — purely through ExecutionConfig{backend, noise,
// shots, seed}: the model is flipped onto the ShotBackend with
// set_execution_config, no call-site special-casing.
#include "bench_common.h"
#include "qsim/backend.h"

int main() {
  using namespace qugeo;
  bench::print_header(
      "Ablation: measurement shot budget for the trained Q-M-LY readout",
      "extension — hardware deployment cost the paper's NISQ story implies");
  bench::Setup setup = bench::standard_setup();
  setup.train.epochs = std::max<std::size_t>(20, setup.train.epochs / 2);
  bench::print_run_scale(setup);

  const auto& ds = setup.data.qdfw;
  const auto split = setup.data.split();
  core::ModelConfig mc;
  mc.decoder = core::DecoderKind::kLayer;
  Rng init(42);
  core::QuGeoModel model(mc, init);
  (void)train_model(model, ds, split, setup.train);
  const core::EvalMetrics exact = evaluate_model(model, ds, split.test);

  std::printf("\n%-10s | %-10s | %-8s | %-10s\n", "shots", "readout e", "SSIM",
              "MSE");
  std::printf("-----------+------------+----------+-----------\n");
  for (const Real readout_error : {0.0, 0.02}) {
    for (const std::size_t shots : {64u, 256u, 1024u, 4096u, 16384u}) {
      qsim::ExecutionConfig exec;
      exec.shots = shots;
      exec.noise.readout_error = readout_error;
      exec.seed = 2024;
      model.set_execution_config(exec);
      const core::EvalMetrics m = evaluate_model(model, ds, split.test);
      std::printf("%-10zu | %-10g | %8.4f | %10.3e\n", shots, readout_error,
                  m.ssim, m.mse);
    }
  }
  std::printf("%-10s | %-10s | %8.4f | %10.3e\n", "exact", "0", exact.ssim,
              exact.mse);
  std::printf(
      "\nExpected shape: metrics converge to the exact readout as the shot"
      "\nbudget grows (a few thousand shots per gather suffice); a 2%%"
      "\nreadout error costs a roughly constant SSIM offset on top.\n");
  return 0;
}
