// Custom Google-Benchmark main for the bench_micro_* suites: runs the
// registered benchmarks with the normal console output, then merges every
// measured run into BENCH_micro.json (override the path with
// QUGEO_BENCH_JSON) via bench_common.h's JsonReport — the machine-readable
// perf trajectory compared across PRs.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"

namespace qugeo::bench {

/// Google Benchmark renamed Run::error_occurred to Run::skipped in v1.8;
/// probe the member so both API generations compile.
template <typename R>
[[nodiscard]] bool run_was_skipped(const R& run) {
  if constexpr (requires { run.skipped; })
    return run.skipped != decltype(run.skipped){};
  else
    return run.error_occurred;
}

class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run_was_skipped(run) || run.run_type != Run::RT_Iteration) continue;
      const auto it = run.counters.find("items_per_second");
      report_.add(run.benchmark_name(), to_ms(run.GetAdjustedRealTime(), run.time_unit),
                  to_ms(run.GetAdjustedCPUTime(), run.time_unit),
                  static_cast<std::int64_t>(run.iterations),
                  it == run.counters.end() ? 0.0 : static_cast<double>(it->second));
    }
  }

  [[nodiscard]] const JsonReport& report() const { return report_; }

 private:
  static double to_ms(double t, benchmark::TimeUnit unit) {
    switch (unit) {
      case benchmark::kNanosecond: return t * 1e-6;
      case benchmark::kMicrosecond: return t * 1e-3;
      case benchmark::kMillisecond: return t;
      case benchmark::kSecond: return t * 1e3;
    }
    return t;
  }

  JsonReport report_;
};

inline int run_micro_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!reporter.report().empty()) {
    const char* path = std::getenv("QUGEO_BENCH_JSON");
    reporter.report().write_merged(path != nullptr ? path : "BENCH_micro.json");
  }
  return 0;
}

}  // namespace qugeo::bench

/// Drop-in replacement for BENCHMARK_MAIN() that also writes BENCH_micro.json.
#define QUGEO_BENCH_MICRO_MAIN()                                    \
  int main(int argc, char** argv) {                                 \
    return qugeo::bench::run_micro_benchmarks(argc, argv);          \
  }
