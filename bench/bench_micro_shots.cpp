// Microbenchmarks of the finite-shot sampled readout: the raw CDF sampler
// (qsim/shots.h) and the full ShotBackend forward pass on the paper
// ansatz — the cost model behind choosing a hardware-realistic shot
// budget. Merges into BENCH_micro.json like every micro suite.
#include <benchmark/benchmark.h>

#include "bench_micro_main.h"

#include "common/rng.h"
#include "core/ansatz.h"
#include "core/layout.h"
#include "qsim/backend.h"
#include "qsim/shots.h"

namespace {

using namespace qugeo;

qsim::Circuit build_paper_ansatz(Index qubits, std::size_t blocks) {
  const core::QubitLayout layout({qubits}, 0);
  core::AnsatzConfig cfg;
  cfg.blocks = blocks;
  return build_qugeo_ansatz(layout, cfg);
}

void BM_SampledReadoutFromCdf(benchmark::State& state) {
  // Arg = shot count on a fixed 8-qubit distribution (pure sampling cost:
  // per-shot RNG sub-stream + inverse-CDF binary search + readout flips).
  const Index qubits = 8;
  const Index dim = Index{1} << qubits;
  Rng rng(21);
  std::vector<Real> cdf(dim);
  Real acc = 0;
  for (Index k = 0; k < dim; ++k) {
    acc += rng.uniform();
    cdf[k] = acc;
  }
  const auto shots = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto probs =
        qsim::sampled_probabilities_from_cdf(cdf, qubits, ++seed, shots, 0.02);
    benchmark::DoNotOptimize(probs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(shots));
}
BENCHMARK(BM_SampledReadoutFromCdf)->Arg(1024)->Arg(16384);

void BM_ShotBackendForward(benchmark::State& state) {
  // Arg = shot count over the statevector inner on the 8-qubit ansatz.
  const qsim::Circuit circuit = build_paper_ansatz(8, 4);
  std::vector<Real> params(circuit.num_params());
  Rng rng(11);
  rng.fill_uniform(params, -1, 1);

  qsim::ExecutionConfig cfg;
  cfg.shots = static_cast<std::size_t>(state.range(0));
  cfg.noise.readout_error = 0.02;
  const auto backend = qsim::make_backend(cfg, 8);
  for (auto _ : state) {
    backend->run(circuit, params);
    benchmark::DoNotOptimize(backend->probabilities().data());
  }
  // Shots drawn per second (the statevector forward is amortized across them).
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cfg.shots));
  state.counters["gate_ops"] = static_cast<double>(circuit.num_ops());
}
BENCHMARK(BM_ShotBackendForward)->Arg(1024)->Arg(4096);

}  // namespace

QUGEO_BENCH_MICRO_MAIN()
