// Microbenchmarks of the pluggable simulation-backend layer: the paper
// ansatz executed on the statevector, density-matrix, and N-trajectory
// backends — the cost model behind choosing exact vs. sampled noise for
// the NISQ ablation. Merges into BENCH_micro.json like every micro suite.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_micro_main.h"

#include "common/rng.h"
#include "core/ansatz.h"
#include "core/layout.h"
#include "qsim/backend.h"

namespace {

using namespace qugeo;

struct AnsatzFixture {
  qsim::Circuit circuit;
  std::vector<Real> params;

  explicit AnsatzFixture(Index qubits, std::size_t blocks)
      : circuit(build_ansatz(qubits, blocks)) {
    params.resize(circuit.num_params());
    Rng rng(11);
    rng.fill_uniform(params, -1, 1);
  }

  static qsim::Circuit build_ansatz(Index qubits, std::size_t blocks) {
    const core::QubitLayout layout({qubits}, 0);
    core::AnsatzConfig cfg;
    cfg.blocks = blocks;
    return build_qugeo_ansatz(layout, cfg);
  }
};

void run_backend_bench(benchmark::State& state, const qsim::ExecutionConfig& cfg,
                       Index qubits, std::size_t blocks) {
  const AnsatzFixture fx(qubits, blocks);
  const auto backend = qsim::make_backend(cfg, qubits);
  for (auto _ : state) {
    backend->run(fx.circuit, fx.params);
    benchmark::DoNotOptimize(backend->probabilities().data());
  }
  // Throughput in ansatz gate applications per second (trajectory backends
  // replay the circuit once per trajectory).
  const std::size_t replays = cfg.backend == qsim::BackendKind::kTrajectory
                                  ? std::max<std::size_t>(cfg.trajectories, 1)
                                  : 1;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.circuit.num_ops()) *
                          static_cast<std::int64_t>(replays));
  state.counters["gate_ops"] = static_cast<double>(fx.circuit.num_ops());
}

void BM_StatevectorBackendForward(benchmark::State& state) {
  qsim::ExecutionConfig cfg;
  run_backend_bench(state, cfg, static_cast<Index>(state.range(0)), 4);
}
BENCHMARK(BM_StatevectorBackendForward)->Arg(4)->Arg(8);

void BM_DensityBackendForward(benchmark::State& state) {
  qsim::ExecutionConfig cfg;
  cfg.backend = qsim::BackendKind::kDensityMatrix;
  cfg.noise.gate_error_prob = 0.01;
  run_backend_bench(state, cfg, static_cast<Index>(state.range(0)), 4);
}
BENCHMARK(BM_DensityBackendForward)->Arg(4)->Arg(8);

void BM_TrajectoryBackendForward(benchmark::State& state) {
  // Arg = trajectory count on the 8-qubit paper ansatz.
  qsim::ExecutionConfig cfg;
  cfg.backend = qsim::BackendKind::kTrajectory;
  cfg.noise.gate_error_prob = 0.01;
  cfg.trajectories = static_cast<std::size_t>(state.range(0));
  run_backend_bench(state, cfg, 8, 4);
}
BENCHMARK(BM_TrajectoryBackendForward)->Arg(8)->Arg(32);

}  // namespace

QUGEO_BENCH_MICRO_MAIN()
